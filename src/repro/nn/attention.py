"""Transformer building blocks: multi-head attention and encoder layers.

ExprLLM in the paper is a decoder-only LLM converted to a *bidirectional*
encoder (LLM2Vec); TAGFormer is an SGFormer-style graph transformer using
global attention.  Both are built from the :class:`MultiHeadAttention` and
:class:`TransformerEncoderLayer` classes defined here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .layers import Dropout, GELU, LayerNorm, Linear, Module, ModuleList, Sequential
from .tensor import Tensor, concatenate, where_mask


class SegmentSpec:
    """Row bookkeeping for mask-free attention over packed independent segments.

    A packed batch lays several independent graphs out in one ``(seq, dim)``
    node set; the dense path keeps them independent with a block-diagonal
    ``(seq, seq)`` attention mask, which costs O(seq²) scores even though all
    cross-segment entries are discarded.  ``SegmentSpec`` instead records, for
    every segment, the packed row indices that belong to it, and groups
    segments of identical size so each group runs as one *small* batched
    attention ``(group, heads, size, size)`` with no mask at all.

    Masked softmax at ``-1e9`` underflows to exactly-zero attention weight,
    so the segmented computation is numerically equivalent to the dense
    masked one — it simply never materialises the cross-segment scores.

    Parameters
    ----------
    segments:
        Per-segment integer row indices into the packed layout (rows may be
        non-contiguous, e.g. node rows plus a trailing [CLS] slot).
    blocks:
        Optional per-segment dense ``(size, size)`` linear operators (e.g.
        normalised adjacency blocks) for :meth:`propagate`.
    """

    def __init__(
        self,
        segments: Sequence[np.ndarray],
        blocks: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        if blocks is not None and len(blocks) != len(segments):
            raise ValueError("blocks must match segments one-to-one")
        rows = [np.asarray(seg, dtype=np.int64).reshape(-1) for seg in segments]
        order = sorted(range(len(rows)), key=lambda g: (len(rows[g]), g))
        perm_parts: List[np.ndarray] = []
        #: ``(start, count, size)`` triples in permuted coordinates, one per
        #: group of equally-sized segments.
        self.groups: List[Tuple[int, int, int]] = []
        #: per-group stacked ``(count, size, size)`` operators (when given).
        self.block_stacks: Optional[List[np.ndarray]] = [] if blocks is not None else None
        start = 0
        i = 0
        while i < len(order):
            size = len(rows[order[i]])
            j = i
            while j < len(order) and len(rows[order[j]]) == size:
                j += 1
            members = order[i:j]
            perm_parts.extend(rows[g] for g in members)
            if self.block_stacks is not None:
                self.block_stacks.append(
                    np.stack([np.asarray(blocks[g], dtype=np.float64) for g in members])
                )
            self.groups.append((start, len(members), size))
            start += len(members) * size
            i = j
        self.perm = (
            np.concatenate(perm_parts) if perm_parts else np.zeros(0, dtype=np.int64)
        )
        self.inv_perm = np.argsort(self.perm)
        self.total_rows = int(self.perm.size)
        self.num_segments = len(rows)

    def propagate(self, hidden: Tensor) -> Tensor:
        """Apply the per-segment block operators: ``block_diag(blocks) @ hidden``.

        Equivalent to multiplying by the dense block-diagonal matrix, but as
        one batched ``(count, size, size) @ (count, size, dim)`` matmul per
        size group — never materialising the O(seq²) dense operator.
        """
        if self.block_stacks is None:
            raise ValueError("SegmentSpec was built without blocks")
        dim = hidden.shape[-1]
        permuted = hidden[self.perm]
        outputs = []
        for (start, count, size), stack in zip(self.groups, self.block_stacks):
            seg = permuted[start : start + count * size].reshape(count, size, dim)
            outputs.append((Tensor(stack) @ seg).reshape(count * size, dim))
        return concatenate(outputs, axis=0)[self.inv_perm]


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention with optional key padding mask.

    Attention is bidirectional (no causal mask), matching the LLM2Vec-style
    conversion used for ExprLLM and the global attention of TAGFormer.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"model dim {dim} must be divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        key_padding_mask: Optional[np.ndarray] = None,
        attn_mask: Optional[np.ndarray] = None,
        segments: Optional[SegmentSpec] = None,
    ) -> Tensor:
        """Attend over a ``(batch, seq, dim)`` or ``(seq, dim)`` input.

        ``key_padding_mask`` is a boolean array of shape ``(batch, seq)`` (or
        ``(seq,)``) where ``True`` marks *valid* positions.

        ``attn_mask`` is a boolean pairwise mask of shape ``(seq, seq)`` (or
        ``(batch, seq, seq)``) where ``True`` means the query position (row)
        may attend to the key position (column).  This is how a packed batch
        of independent graphs is encoded in one pass: the block-diagonal mask
        keeps every graph's attention confined to its own nodes, which is
        numerically equivalent to running each graph separately (masked
        scores underflow to exactly zero attention weight after softmax).

        ``segments`` replaces a block-diagonal ``attn_mask`` with the
        mask-free per-segment path: attention runs group-by-group over
        equally-sized segments and never builds the ``(seq, seq)`` score
        matrix.  ``x`` must then be the 2-D packed layout the spec indexes.
        """
        if segments is not None:
            if key_padding_mask is not None or attn_mask is not None:
                raise ValueError("segments cannot be combined with masks")
            return self._forward_segments(x, segments)
        squeeze = False
        if x.ndim == 2:
            x = x.reshape(1, *x.shape)
            squeeze = True
            if key_padding_mask is not None and key_padding_mask.ndim == 1:
                key_padding_mask = key_padding_mask[None, :]

        batch, seq, _ = x.shape
        q = self.q_proj(x)
        k = self.k_proj(x)
        v = self.v_proj(x)

        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        q = split_heads(q)
        k = split_heads(k)
        v = split_heads(v)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (batch, heads, seq, seq)

        mask = _combine_masks(key_padding_mask, attn_mask, scores.shape)
        if mask is not None:
            scores = where_mask(
                mask, scores, Tensor(np.full(scores.shape, -1e9, dtype=scores.data.dtype))
            )

        attn = scores.softmax(axis=-1)
        attn = self.dropout(attn)
        context = attn @ v  # (batch, heads, seq, head_dim)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        out = self.out_proj(context)
        if squeeze:
            out = out.reshape(seq, self.dim)
        return out

    def _forward_segments(self, x: Tensor, segments: SegmentSpec) -> Tensor:
        """Mask-free block-diagonal attention over a packed 2-D layout.

        The packed rows are gathered once into size-bucketed order, each
        bucket runs true batched ``(group, heads, size, size)`` attention
        with no mask, and a single inverse gather restores packed order.
        """
        if x.ndim != 2:
            raise ValueError("segmented attention expects a packed (seq, dim) input")
        if x.shape[0] != segments.total_rows:
            raise ValueError(
                f"packed input has {x.shape[0]} rows, spec covers {segments.total_rows}"
            )
        permuted = x[segments.perm]
        q = self.q_proj(permuted)
        k = self.k_proj(permuted)
        v = self.v_proj(permuted)
        scale = 1.0 / np.sqrt(self.head_dim)

        contexts = []
        for start, count, size in segments.groups:
            stop = start + count * size

            def heads(t: Tensor) -> Tensor:
                return t[start:stop].reshape(count, size, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

            qg, kg, vg = heads(q), heads(k), heads(v)
            scores = (qg @ kg.transpose(0, 1, 3, 2)) * scale
            attn = self.dropout(scores.softmax(axis=-1))
            context = attn @ vg  # (count, heads, size, head_dim)
            contexts.append(context.transpose(0, 2, 1, 3).reshape(count * size, self.dim))

        packed = concatenate(contexts, axis=0)[segments.inv_perm]
        return self.out_proj(packed)


def _combine_masks(
    key_padding_mask: Optional[np.ndarray],
    attn_mask: Optional[np.ndarray],
    scores_shape: tuple,
) -> Optional[np.ndarray]:
    """Merge padding and pairwise masks into one broadcastable boolean array.

    The result is a broadcast *view* expanded to ``scores_shape`` (no
    per-head materialisation); only combining both masks allocates, and then
    just ``(batch, 1, seq, seq)``.
    """
    if key_padding_mask is None and attn_mask is None:
        return None
    mask: Optional[np.ndarray] = None
    if key_padding_mask is not None:
        valid = np.asarray(key_padding_mask, dtype=bool)
        mask = valid[:, None, None, :]  # broadcast over heads and query positions
    if attn_mask is not None:
        pairwise = np.asarray(attn_mask, dtype=bool)
        if pairwise.ndim == 2:
            pairwise = pairwise[None, None, :, :]
        elif pairwise.ndim == 3:
            pairwise = pairwise[:, None, :, :]
        else:
            raise ValueError("attn_mask must be (seq, seq) or (batch, seq, seq)")
        mask = pairwise if mask is None else mask & pairwise
    return np.broadcast_to(mask, scores_shape)


class FeedForward(Module):
    """Position-wise feed-forward network with GELU activation."""

    def __init__(self, dim: int, hidden_dim: int, dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.net = Sequential(
            Linear(dim, hidden_dim, rng=rng),
            GELU(),
            Dropout(dropout, rng=rng),
            Linear(hidden_dim, dim, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder layer (attention + feed-forward, residual)."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ff_multiplier: int = 4,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attn_norm = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.ff_norm = LayerNorm(dim)
        self.ff = FeedForward(dim, dim * ff_multiplier, dropout=dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        key_padding_mask: Optional[np.ndarray] = None,
        attn_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        x = x + self.attn(self.attn_norm(x), key_padding_mask=key_padding_mask, attn_mask=attn_mask)
        x = x + self.ff(self.ff_norm(x))
        return x


class TransformerEncoder(Module):
    """Stack of encoder layers followed by a final layer norm."""

    def __init__(
        self,
        dim: int,
        depth: int,
        num_heads: int,
        ff_multiplier: int = 4,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.layers = ModuleList(
            TransformerEncoderLayer(dim, num_heads, ff_multiplier, dropout, rng=rng)
            for _ in range(depth)
        )
        self.final_norm = LayerNorm(dim)

    def forward(
        self,
        x: Tensor,
        key_padding_mask: Optional[np.ndarray] = None,
        attn_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, key_padding_mask=key_padding_mask, attn_mask=attn_mask)
        return self.final_norm(x)
