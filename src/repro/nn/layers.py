"""Neural network layers used across the NetTAG reproduction.

These mirror the small set of PyTorch modules the paper's models need:
``Linear``, ``Embedding``, ``LayerNorm``, ``Dropout``, a ``Sequential``
container and the three-layer ``MLP`` heads used both as auxiliary
pre-training decoders (gate-type classifier, graph-size regressor) and as
fine-tuning task models.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import init
from .backend import get_backend
from .functional import dropout_mask, fused_linear, layer_norm
from .tensor import Tensor, embedding_lookup


class Module:
    """Base class with parameter registration, train/eval mode and state dicts."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training: bool = True

    # -- registration ---------------------------------------------------
    def register_parameter(self, name: str, param: Tensor) -> Tensor:
        param.requires_grad = True
        param.name = name
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module) and name not in ("_modules",):
            object.__getattribute__(self, "_modules")[name] = value
        super().__setattr__(name, value)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- modes ----------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # -- state dict -----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # -- forward --------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine projection ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(init.xavier_uniform((in_features, out_features), rng=rng))
        )
        self.use_bias = bias
        if bias:
            self.bias = self.register_parameter("bias", Tensor(np.zeros(out_features)))

    def forward(self, x: Tensor) -> Tensor:
        if get_backend().fused:
            return fused_linear(x, self.weight, self.bias if self.use_bias else None)
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = self.register_parameter(
            "weight", Tensor(init.normal((num_embeddings, embedding_dim), std=0.02, rng=rng))
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = self.register_parameter("gamma", Tensor(np.ones(dim)))
        self.beta = self.register_parameter("beta", Tensor(np.zeros(dim)))

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.gamma, self.beta, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        mask = dropout_mask(x.shape, self.rate, rng=self.rng)
        return x * Tensor(mask)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


_FUSABLE_ACTIVATIONS: Dict[type, str] = {GELU: "gelu", ReLU: "relu", Tanh: "tanh"}


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for i, module in enumerate(modules):
            self.register_module(str(i), module)
            self._ordered.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def forward(self, x):
        if get_backend().fused:
            return self._forward_fused(x)
        for module in self._ordered:
            x = module(x)
        return x

    def _forward_fused(self, x):
        """Fuse adjacent ``Linear`` + activation pairs into single kernels.

        This is what makes FeedForward's ``Linear → GELU`` and the MLP heads'
        ``Linear → ReLU`` run as one backend call each instead of building
        matmul/add/activation graph nodes separately.
        """
        ordered = self._ordered
        i = 0
        while i < len(ordered):
            module = ordered[i]
            nxt = ordered[i + 1] if i + 1 < len(ordered) else None
            if isinstance(module, Linear) and isinstance(nxt, (GELU, ReLU, Tanh)):
                activation = _FUSABLE_ACTIVATIONS[type(nxt)]
                x = fused_linear(
                    x,
                    module.weight,
                    module.bias if module.use_bias else None,
                    activation=activation,
                )
                i += 2
            else:
                x = module(x)
                i += 1
        return x


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes.

    The paper uses three-layer MLPs with hidden dimension 256 both for the
    auxiliary pre-training decoders and for the fine-tuning task heads; this
    class defaults to that configuration but is fully configurable.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden_sizes: Sequence[int] = (256, 256),
        activation: str = "relu",
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        acts = {"relu": ReLU, "gelu": GELU, "tanh": Tanh}
        if activation not in acts:
            raise ValueError(f"unknown activation {activation!r}; choose from {sorted(acts)}")
        layers: List[Module] = []
        prev = in_features
        for hidden in hidden_sizes:
            layers.append(Linear(prev, hidden, rng=rng))
            layers.append(acts[activation]())
            if dropout > 0:
                layers.append(Dropout(dropout, rng=rng))
            prev = hidden
        layers.append(Linear(prev, out_features, rng=rng))
        self.net = Sequential(*layers)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class ModuleList(Module):
    """Container holding an ordered list of sub-modules."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        self.register_module(str(len(self._items)), module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called directly")
