"""LoRA (low-rank adaptation) for Linear layers.

The paper pre-trains ExprLLM with LoRA so that the large backbone stays frozen
and only small low-rank adapters are updated.  The same mechanism is provided
here: :class:`LoRALinear` wraps a frozen :class:`~repro.nn.layers.Linear` and
adds a trainable low-rank update ``x A B * (alpha / r)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .layers import Linear, Module
from .tensor import Tensor


class LoRALinear(Module):
    """A frozen linear layer plus a trainable low-rank residual."""

    def __init__(
        self,
        base: Linear,
        rank: int = 4,
        alpha: float = 8.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rank <= 0:
            raise ValueError("LoRA rank must be positive")
        self.base = base
        # Freeze the wrapped projection: its parameters are excluded from
        # this module's parameter list so optimisers never update them.
        self._modules.pop("base", None)
        for param in self.base.parameters():
            param.requires_grad = True  # still needs grads to flow through matmul
        self.rank = rank
        self.alpha = alpha
        self.scaling = alpha / rank
        self.lora_a = self.register_parameter(
            "lora_a", Tensor(init.normal((base.in_features, rank), std=0.02, rng=rng))
        )
        self.lora_b = self.register_parameter("lora_b", Tensor(np.zeros((rank, base.out_features))))

    def forward(self, x: Tensor) -> Tensor:
        frozen = self.base(x)
        update = (x @ self.lora_a) @ self.lora_b
        return frozen + update * self.scaling

    def merged_weight(self) -> np.ndarray:
        """Return the effective weight matrix with the adapter folded in."""
        return self.base.weight.data + self.scaling * (self.lora_a.data @ self.lora_b.data)


def apply_lora(module: Module, rank: int = 4, alpha: float = 8.0, rng: Optional[np.random.Generator] = None) -> int:
    """Replace every :class:`Linear` child of ``module`` with a LoRA-wrapped copy.

    Returns the number of layers wrapped.  Nested modules are traversed
    recursively; already-wrapped layers are skipped.
    """
    wrapped = 0
    for name, child in list(module._modules.items()):
        if isinstance(child, LoRALinear):
            continue
        if isinstance(child, Linear):
            lora = LoRALinear(child, rank=rank, alpha=alpha, rng=rng)
            module._modules[name] = lora
            object.__setattr__(module, name, lora)
            _replace_in_containers(module, child, lora)
            wrapped += 1
        else:
            wrapped += apply_lora(child, rank=rank, alpha=alpha, rng=rng)
    return wrapped


def _replace_in_containers(module: Module, old: Module, new: Module) -> None:
    """Keep Sequential/ModuleList internal ordering lists in sync after a swap."""
    for attr in ("_ordered", "_items"):
        items = getattr(module, attr, None)
        if isinstance(items, list):
            for i, item in enumerate(items):
                if item is old:
                    items[i] = new
