"""Saving and loading model / training checkpoints as ``.npz`` archives.

Two checkpoint flavours live here:

* **model checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`) —
  one module's parameters plus JSON metadata.  Every checkpoint is stamped
  with the library version that wrote it, and loading warns (instead of
  silently proceeding) when the stored metadata disagrees with the running
  library or with caller-supplied expectations.
* **training checkpoints** (:func:`save_training_checkpoint` /
  :func:`load_training_checkpoint`) — several named modules, the optimiser's
  full moment state, the LR-schedule step and arbitrary engine state (global
  step, RNG state, loss curves) so the :class:`repro.train.Trainer` can resume
  a run bit-identically.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from .layers import Module
from .optim import Optimizer

PathLike = Union[str, Path]

# Metadata keys whose values are compared on load; a mismatch means the
# checkpoint was produced by a different library / configuration and gets a
# warning instead of a silent load.
_COMPARED_METADATA_KEYS = ("library_version", "preset", "corpus_fingerprint")


def _library_version() -> str:
    from .. import __version__

    return __version__


def atomic_write(path: Path, tmp_name: str, write) -> None:
    """Write a file atomically: ``write(tmp)`` then rename onto ``path``.

    Checkpoints and cache artefacts are written while the process may be
    interrupted at any moment (Ctrl-C during training); a direct write
    interrupted mid-stream leaves a truncated file that poisons every later
    resume.  Renames on the same filesystem are atomic, so the target path
    only ever holds a complete file.
    """
    tmp = path.with_name(tmp_name)
    try:
        write(tmp)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # interrupted between write and replace
            tmp.unlink()


def _atomic_savez(path: Path, payload: Dict[str, np.ndarray]) -> None:
    # numpy appends ".npz" to names that lack it, so keep the suffix last.
    atomic_write(
        path, path.name + ".tmp.npz", lambda tmp: np.savez_compressed(tmp, **payload)
    )


def _metadata_payload(metadata: Optional[Dict[str, Any]]) -> np.ndarray:
    stamped = dict(metadata or {})
    stamped.setdefault("library_version", _library_version())
    return np.frombuffer(json.dumps(stamped).encode("utf-8"), dtype=np.uint8)


def _warn_on_metadata_mismatch(
    metadata: Mapping[str, Any],
    path: Path,
    expected: Optional[Mapping[str, Any]] = None,
) -> None:
    expectations: Dict[str, Any] = {"library_version": _library_version()}
    expectations.update(expected or {})
    for key, want in expectations.items():
        if key not in _COMPARED_METADATA_KEYS and (expected is None or key not in expected):
            continue
        have = metadata.get(key)
        if have is not None and want is not None and have != want:
            warnings.warn(
                f"checkpoint {path} was written with {key}={have!r} but this "
                f"process expects {key}={want!r}; loading anyway",
                stacklevel=3,
            )


def save_checkpoint(module: Module, path: PathLike, metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Serialise a module's parameters (and optional JSON metadata) to ``path``.

    The metadata is automatically stamped with the current ``library_version``
    unless the caller supplied one explicitly.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    payload = {f"param::{name}": value for name, value in state.items()}
    payload["__metadata__"] = _metadata_payload(metadata)
    _atomic_savez(path, payload)
    return path


def peek_metadata(path: PathLike) -> Dict[str, Any]:
    """Read only the JSON metadata of a checkpoint (without touching any module)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in archive.files else b"{}"
    return json.loads(metadata_bytes.decode("utf-8"))


def load_checkpoint(
    module: Module,
    path: PathLike,
    expected_metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Load parameters saved by :func:`save_checkpoint`; returns the metadata dict.

    Warns when the checkpoint's ``library_version`` differs from the running
    library, or when any key in ``expected_metadata`` (e.g. config preset,
    corpus fingerprint) disagrees with the stored value.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        state = {
            key[len("param::"):]: archive[key]
            for key in archive.files
            if key.startswith("param::")
        }
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in archive.files else b"{}"
    metadata = json.loads(metadata_bytes.decode("utf-8"))
    _warn_on_metadata_mismatch(metadata, path, expected_metadata)
    module.load_state_dict(state)
    return metadata


# ----------------------------------------------------------------------
# Training checkpoints (multi-module + optimiser + engine state)
# ----------------------------------------------------------------------
def _flatten_optimizer_state(state: Dict[str, Any]) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Split an optimiser state dict into array buffers and JSON scalars."""
    arrays: Dict[str, np.ndarray] = {}
    scalars: Dict[str, Any] = {}
    for key, value in state.items():
        if isinstance(value, list) and value and isinstance(value[0], np.ndarray):
            for i, buffer in enumerate(value):
                arrays[f"opt::{key}::{i}"] = buffer
            scalars[f"__len_{key}"] = len(value)
        else:
            scalars[key] = value
    return arrays, scalars


def _unflatten_optimizer_state(
    archive: Mapping[str, np.ndarray], scalars: Dict[str, Any]
) -> Dict[str, Any]:
    state: Dict[str, Any] = {}
    for key, value in scalars.items():
        if key.startswith("__len_"):
            name = key[len("__len_"):]
            state[name] = [archive[f"opt::{name}::{i}"] for i in range(int(value))]
        else:
            state[key] = value
    return state


def save_training_checkpoint(
    path: PathLike,
    modules: Mapping[str, Module],
    optimizer: Optional[Optimizer] = None,
    state: Optional[Dict[str, Any]] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Serialise a full training snapshot: named modules, optimiser, engine state.

    ``state`` must be JSON-serialisable except for values that are numpy
    arrays or lists of floats, which are stored as arrays under
    ``state_array::<key>``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, np.ndarray] = {}
    for module_name, module in modules.items():
        for name, value in module.state_dict().items():
            payload[f"param::{module_name}::{name}"] = value
    opt_scalars: Dict[str, Any] = {}
    if optimizer is not None:
        arrays, opt_scalars = _flatten_optimizer_state(optimizer.state_dict())
        payload.update(arrays)
    json_state: Dict[str, Any] = {}
    for key, value in (state or {}).items():
        if isinstance(value, np.ndarray):
            payload[f"state_array::{key}"] = value
        elif isinstance(value, list) and value and all(isinstance(v, (int, float)) for v in value):
            payload[f"state_array::{key}"] = np.asarray(value, dtype=np.float64)
        else:
            json_state[key] = value
    blob = {"optimizer": opt_scalars, "state": json_state}
    payload["__train_state__"] = np.frombuffer(json.dumps(blob).encode("utf-8"), dtype=np.uint8)
    payload["__metadata__"] = _metadata_payload(metadata)
    _atomic_savez(path, payload)
    return path


def load_training_checkpoint(
    path: PathLike,
    modules: Mapping[str, Module],
    optimizer: Optional[Optimizer] = None,
    expected_metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Restore a snapshot written by :func:`save_training_checkpoint`.

    Returns the engine state dict (JSON values plus ``state_array::`` arrays,
    the latter restored as numpy arrays) with the checkpoint metadata under
    the ``"__metadata__"`` key.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"training checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        files = set(archive.files)
        blob_bytes = archive["__train_state__"].tobytes() if "__train_state__" in files else b"{}"
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in files else b"{}"
        blob = json.loads(blob_bytes.decode("utf-8"))
        metadata = json.loads(metadata_bytes.decode("utf-8"))
        _warn_on_metadata_mismatch(metadata, path, expected_metadata)
        for module_name, module in modules.items():
            prefix = f"param::{module_name}::"
            state = {
                key[len(prefix):]: archive[key] for key in files if key.startswith(prefix)
            }
            if not state:
                raise KeyError(f"checkpoint {path} has no parameters for module {module_name!r}")
            module.load_state_dict(state)
        if optimizer is not None:
            opt_state = _unflatten_optimizer_state(archive, blob.get("optimizer", {}))
            if opt_state:
                optimizer.load_state_dict(opt_state)
        engine_state: Dict[str, Any] = dict(blob.get("state", {}))
        for key in files:
            if key.startswith("state_array::"):
                engine_state[key[len("state_array::"):]] = archive[key]
    engine_state["__metadata__"] = metadata
    return engine_state
