"""Saving and loading model checkpoints as ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from .layers import Module

PathLike = Union[str, Path]


def save_checkpoint(module: Module, path: PathLike, metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Serialise a module's parameters (and optional JSON metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    payload = {f"param::{name}": value for name, value in state.items()}
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return path


def peek_metadata(path: PathLike) -> Dict[str, Any]:
    """Read only the JSON metadata of a checkpoint (without touching any module)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in archive.files else b"{}"
    return json.loads(metadata_bytes.decode("utf-8"))


def load_checkpoint(module: Module, path: PathLike) -> Dict[str, Any]:
    """Load parameters saved by :func:`save_checkpoint`; returns the metadata dict."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        state = {
            key[len("param::"):]: archive[key]
            for key in archive.files
            if key.startswith("param::")
        }
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in archive.files else b"{}"
    module.load_state_dict(state)
    return json.loads(metadata_bytes.decode("utf-8"))
