"""A minimal numpy-based neural network framework (autograd, layers, optimisers).

This subpackage replaces PyTorch / PyTorch-Geometric in the NetTAG
reproduction.  It provides everything the paper's models need: an autograd
tensor, linear/embedding/normalisation layers, bidirectional multi-head
attention and transformer encoders, LoRA adapters, Adam/SGD optimisers and
checkpoint serialisation.
"""

from .tensor import (
    Tensor,
    concatenate,
    embedding_lookup,
    ones,
    stack,
    tensor,
    where_mask,
    zeros,
)
from .functional import (
    cosine_similarity_matrix,
    cross_entropy,
    info_nce,
    l1_loss,
    layer_norm,
    mse_loss,
    normalize,
    symmetric_info_nce,
)
from .layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    MLP,
    Module,
    ModuleList,
    ReLU,
    Sequential,
    Tanh,
)
from .attention import (
    FeedForward,
    MultiHeadAttention,
    TransformerEncoder,
    TransformerEncoderLayer,
)
from .optim import (
    Adam,
    ConstantSchedule,
    CosineSchedule,
    Optimizer,
    SGD,
    clip_grad_norm,
    global_grad_norm,
)
from .lora import LoRALinear, apply_lora
from .serialization import (
    load_checkpoint,
    load_training_checkpoint,
    peek_metadata,
    save_checkpoint,
    save_training_checkpoint,
)

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "stack",
    "concatenate",
    "embedding_lookup",
    "where_mask",
    "cross_entropy",
    "mse_loss",
    "l1_loss",
    "info_nce",
    "symmetric_info_nce",
    "normalize",
    "layer_norm",
    "cosine_similarity_matrix",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "GELU",
    "ReLU",
    "Tanh",
    "Sequential",
    "ModuleList",
    "MLP",
    "MultiHeadAttention",
    "FeedForward",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "Adam",
    "SGD",
    "CosineSchedule",
    "ConstantSchedule",
    "Optimizer",
    "clip_grad_norm",
    "global_grad_norm",
    "LoRALinear",
    "apply_lora",
    "save_checkpoint",
    "peek_metadata",
    "load_checkpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
]
