"""Pluggable kernel backends for the autograd engine.

Every hot path in the reproduction — ExprLLM text encoding, TAGFormer packed
forwards, pre-training steps, serving-side encode — bottoms out in the numpy
kernels behind :class:`~repro.nn.tensor.Tensor`.  This module factors those
kernels behind a narrow interface so their numeric policy is swappable:

* :class:`ReferenceBackend` (``"reference"``) — float64 throughout, kernel
  bodies bit-identical to the historical implementations.  Every determinism
  and resume guarantee in the repo is stated against this backend.
* :class:`FastBackend` (``"fast"``) — float32 compute with float64
  accumulation where long reductions would otherwise drift (summations,
  optimiser moments), fused linear(+bias)(+activation) and layer-norm
  kernels that collapse several autograd nodes into one, and mask-free
  block-diagonal segment attention for packed graph batches.

The active backend is a process-wide setting (``set_backend`` /
``use_backend``), initialised from the ``REPRO_BACKEND`` environment
variable.  Model- and trainer-level configuration can pin a backend per
component; ``None`` means "inherit whatever is active".

The kernel interface is deliberately small: ``matmul``, fused
``linear`` (+bias, +activation), ``softmax`` / ``log_softmax``,
``layer_norm``, reductions (``sum``) and the elementwise nonlinearities.
Adding a backend means subclassing :class:`KernelBackend` and overriding the
kernels whose numeric policy should change; ``register_backend`` makes it
selectable by name everywhere (config, CLI, env var).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "FastBackend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
    "register_backend",
    "profile_kernels",
    "KernelProfile",
]

# Python float, not np.float64: a float64 *scalar* would silently promote
# float32 arrays back to float64 inside the fast backend's gelu (NEP 50 keeps
# python-scalar operands weak).  float() is exact, so reference stays
# bit-identical.
_GELU_C = float(np.sqrt(2.0 / np.pi))


class KernelBackend:
    """Numeric kernels behind the autograd engine (float64 base semantics).

    The base class *is* the reference semantics: every kernel body below is
    the exact numpy expression the engine historically inlined, so routing
    through it is bit-identical to the pre-backend code.  Subclasses override
    only the policy knobs (``compute_dtype``, ``fused``,
    ``segment_attention``) and the kernels whose numerics they change.
    """

    name: str = "reference"
    #: dtype used for tensor payloads and kernel arithmetic.
    compute_dtype: np.dtype = np.dtype(np.float64)
    #: dtype used for long accumulations (reductions, optimiser moments).
    accum_dtype: np.dtype = np.dtype(np.float64)
    #: route Linear / FeedForward / LayerNorm through the fused kernels.
    fused: bool = False
    #: use mask-free per-segment attention for packed block-diagonal batches.
    segment_attention: bool = False

    # ------------------------------------------------------------------
    # dtype policy
    # ------------------------------------------------------------------
    def asarray(self, data) -> np.ndarray:
        """Convert ``data`` to the backend's compute dtype (shared when possible)."""
        if isinstance(data, np.ndarray):
            if data.dtype != self.compute_dtype:
                return data.astype(self.compute_dtype)
            return data
        return np.asarray(data, dtype=self.compute_dtype)

    def _cast(self, x: np.ndarray) -> np.ndarray:
        """Cast one operand to the compute dtype (no copy when already there)."""
        if x.dtype != self.compute_dtype:
            return x.astype(self.compute_dtype)
        return x

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.sum(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self, x: np.ndarray) -> np.ndarray:
        return np.exp(x)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    def relu(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Returns ``(out, mask)``; the mask is reused by the backward pass."""
        mask = (x > 0).astype(x.dtype)
        return x * mask, mask

    def gelu(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """tanh-approximated GELU; returns ``(out, tanh_inner)`` for backward."""
        inner = _GELU_C * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        return 0.5 * x * (1.0 + tanh_inner), tanh_inner

    def gelu_backward(
        self, grad: np.ndarray, x: np.ndarray, tanh_inner: np.ndarray
    ) -> np.ndarray:
        sech2 = 1.0 - tanh_inner ** 2
        d_inner = _GELU_C * (1.0 + 3 * 0.044715 * x ** 2)
        return grad * (0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner)

    # ------------------------------------------------------------------
    # Softmax family
    # ------------------------------------------------------------------
    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)

    def softmax_backward(self, grad: np.ndarray, out: np.ndarray, axis: int = -1) -> np.ndarray:
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return out * (grad - dot)

    def log_softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        return shifted - logsumexp

    def log_softmax_backward(self, grad: np.ndarray, out: np.ndarray, axis: int = -1) -> np.ndarray:
        softmax = np.exp(out)
        grad_sum = grad.sum(axis=axis, keepdims=True)
        return grad - softmax * grad_sum

    # ------------------------------------------------------------------
    # Fused kernels (single autograd node each; used when ``fused`` is set,
    # but implemented here so any backend — including reference — can be
    # gradient-checked against the composed float64 path)
    # ------------------------------------------------------------------
    def linear(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        activation: Optional[str] = None,
    ) -> Tuple[np.ndarray, tuple]:
        """Fused ``activation(x @ weight + bias)`` forward.

        ``x`` may have any number of batch dimensions before the feature
        axis.  Returns ``(out, cache)`` where ``cache`` carries what the
        backward kernel needs.
        """
        x = self._cast(x)
        weight = self._cast(weight)
        x2 = x.reshape(-1, x.shape[-1])
        pre = x2 @ weight
        if bias is not None:
            pre = pre + self._cast(bias)
        act_cache: Optional[np.ndarray] = None
        if activation is None:
            out2 = pre
        elif activation == "relu":
            out2, act_cache = self.relu(pre)
        elif activation == "gelu":
            out2, act_cache = self.gelu(pre)
        elif activation == "tanh":
            out2 = np.tanh(pre)
            act_cache = out2
        else:
            raise ValueError(f"unsupported fused activation {activation!r}")
        out = out2.reshape(*x.shape[:-1], weight.shape[1])
        return out, (x2, weight, x.shape, bias is not None, activation, pre, act_cache)

    def linear_backward(
        self, grad: np.ndarray, cache: tuple
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Backward of :meth:`linear`: ``(dx, dweight, dbias)``."""
        x2, weight, x_shape, has_bias, activation, pre, act_cache = cache
        g2 = self._cast(grad).reshape(-1, weight.shape[1])
        if activation == "relu":
            g2 = g2 * act_cache
        elif activation == "gelu":
            g2 = self.gelu_backward(g2, pre, act_cache)
        elif activation == "tanh":
            g2 = g2 * (1.0 - act_cache ** 2)
        dx = (g2 @ weight.T).reshape(x_shape)
        dweight = x2.T @ g2
        dbias = None
        if has_bias:
            dbias = self.sum(g2, axis=0)
        return dx, dweight, dbias

    def layer_norm(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        eps: float,
    ) -> Tuple[np.ndarray, tuple]:
        """Fused layer norm over the last axis; returns ``(out, cache)``."""
        x = self._cast(x)
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=-1, keepdims=True)
        inv_std = (var + eps) ** -0.5
        xhat = centred * inv_std
        out = xhat * self._cast(gamma) + self._cast(beta)
        return out, (xhat, inv_std, gamma)

    def layer_norm_backward(
        self, grad: np.ndarray, cache: tuple
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward of :meth:`layer_norm`: ``(dx, dgamma, dbeta)``."""
        xhat, inv_std, gamma = cache
        grad = self._cast(grad)
        dxhat = grad * self._cast(gamma)
        dx = inv_std * (
            dxhat
            - dxhat.mean(axis=-1, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
        )
        reduce_axes = tuple(range(grad.ndim - 1))
        dgamma = self.sum(grad * xhat, axis=reduce_axes)
        dbeta = self.sum(grad, axis=reduce_axes)
        return dx, dgamma, dbeta


class ReferenceBackend(KernelBackend):
    """The historical float64 semantics (bit-identical to the pre-backend code)."""

    name = "reference"


class FastBackend(KernelBackend):
    """float32 compute, float64 accumulation, fused kernels, segment attention.

    Forward activations match the reference backend to float32 precision
    (documented tolerance: normwise relative error ≤ 1e-5 on encoder
    outputs); long reductions accumulate in float64 before casting back so
    batch-size changes do not amplify rounding.
    """

    name = "fast"
    compute_dtype: np.dtype = np.dtype(np.float32)
    fused = True
    segment_attention = True

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._cast(a) @ self._cast(b)

    def sum(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        # float64 master accumulation: summing many float32 terms in float32
        # loses low bits order-dependently; accumulate wide, then narrow.
        return x.sum(axis=axis, keepdims=keepdims, dtype=self.accum_dtype).astype(
            self.compute_dtype
        )

    def gelu(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x = self._cast(x)
        # x*x*x instead of the reference's x ** 3: numpy's pow ufunc runs a
        # full per-element pow (~100x slower than two multiplies); the
        # ulp-level difference sits far inside the float32 parity budget.
        # The reference kernel keeps the historical x ** 3 expression so its
        # float64 outputs stay bit-identical.
        inner = _GELU_C * (x + 0.044715 * (x * x * x))
        tanh_inner = np.tanh(inner)
        return 0.5 * x * (1.0 + tanh_inner), tanh_inner

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        x = self._cast(x)
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        x = self._cast(x)
        shifted = x - x.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        return shifted - logsumexp


# ----------------------------------------------------------------------
# Registry and active-backend state
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Make ``backend`` selectable by name through ``set_backend``/configs."""
    _REGISTRY[backend.name] = backend
    return backend


register_backend(ReferenceBackend())
register_backend(FastBackend())


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(backend: Union[str, KernelBackend, None]) -> KernelBackend:
    """Map a name / instance / ``None`` (= active) to a backend instance."""
    if backend is None:
        return get_backend()
    if isinstance(backend, KernelBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {', '.join(available_backends())}"
        ) from None


def _default_backend() -> KernelBackend:
    name = os.environ.get("REPRO_BACKEND", "reference").strip() or "reference"
    if name not in _REGISTRY:
        raise ValueError(
            f"REPRO_BACKEND={name!r} is not a registered backend; "
            f"available: {', '.join(available_backends())}"
        )
    return _REGISTRY[name]


_ACTIVE: KernelBackend = _default_backend()
_LOCK = threading.Lock()


def get_backend() -> KernelBackend:
    """The process-wide active backend."""
    return _ACTIVE


def set_backend(backend: Union[str, KernelBackend]) -> KernelBackend:
    """Set the process-wide active backend; returns the instance."""
    global _ACTIVE
    resolved = resolve_backend(backend)
    with _LOCK:
        _ACTIVE = resolved
    return resolved


@contextmanager
def use_backend(backend: Union[str, KernelBackend, None]) -> Iterator[KernelBackend]:
    """Temporarily activate a backend (``None`` is a no-op passthrough).

    The swap is process-wide, mirroring ``set_backend`` — callers that serve
    concurrent traffic under mixed backends should pin one backend per
    process instead of nesting contexts across threads.

    Requesting the backend that is already active (by name) is a passthrough:
    proxies wrapping it — e.g. the :func:`profile_kernels` timer — stay in
    place instead of being displaced by the raw registered instance.
    """
    if backend is None or (isinstance(backend, str) and backend == get_backend().name):
        yield get_backend()
        return
    global _ACTIVE
    resolved = resolve_backend(backend)
    with _LOCK:
        previous = _ACTIVE
        _ACTIVE = resolved
    try:
        yield resolved
    finally:
        with _LOCK:
            _ACTIVE = previous


# ----------------------------------------------------------------------
# Per-kernel profiling
# ----------------------------------------------------------------------
class KernelProfile:
    """Per-op call counts and wall-clock totals collected by ``profile_kernels``."""

    def __init__(self) -> None:
        self.calls: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    def record(self, op: str, seconds: float) -> None:
        self.calls[op] = self.calls.get(op, 0) + 1
        self.seconds[op] = self.seconds.get(op, 0.0) + seconds

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly report, ops sorted by total time (descending)."""
        return {
            op: {"calls": self.calls[op], "seconds": round(self.seconds[op], 6)}
            for op in sorted(self.seconds, key=lambda k: -self.seconds[k])
        }

    def to_text(self) -> str:
        lines = [f"{'kernel':<22}{'calls':>8}{'seconds':>12}"]
        for op, row in self.as_dict().items():
            lines.append(f"{op:<22}{row['calls']:>8}{row['seconds']:>12.4f}")
        return "\n".join(lines)


_PROFILED_OPS = (
    "matmul",
    "linear",
    "linear_backward",
    "layer_norm",
    "layer_norm_backward",
    "softmax",
    "softmax_backward",
    "log_softmax",
    "log_softmax_backward",
    "sum",
    "exp",
    "tanh",
    "sigmoid",
    "relu",
    "gelu",
    "gelu_backward",
)


class _ProfilingBackend(KernelBackend):
    """Transparent proxy that times every kernel call on an inner backend."""

    def __init__(self, inner: KernelBackend, profile: KernelProfile) -> None:
        self._inner = inner
        self._profile = profile
        self.name = inner.name
        self.compute_dtype = inner.compute_dtype
        self.accum_dtype = inner.accum_dtype
        self.fused = inner.fused
        self.segment_attention = inner.segment_attention
        for op in _PROFILED_OPS:
            setattr(self, op, self._wrap(op))

    def asarray(self, data) -> np.ndarray:
        return self._inner.asarray(data)

    def _cast(self, x: np.ndarray) -> np.ndarray:
        return self._inner._cast(x)

    def _wrap(self, op: str):
        fn = getattr(self._inner, op)
        profile = self._profile

        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                profile.record(op, time.perf_counter() - start)

        return timed


@contextmanager
def profile_kernels(
    backend: Union[str, KernelBackend, None] = None
) -> Iterator[KernelProfile]:
    """Activate a profiling proxy around ``backend`` (default: active) and
    yield the :class:`KernelProfile` it fills in."""
    inner = resolve_backend(backend)
    profile = KernelProfile()
    with use_backend(_ProfilingBackend(inner, profile)):
        yield profile
