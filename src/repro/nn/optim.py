"""Optimisers for training the NetTAG encoders and baselines.

The paper trains ExprLLM with LoRA for one epoch and TAGFormer for 50 epochs
using standard Adam-style optimisation; the same optimisers are provided here.
Every optimiser (and the LR schedule) exposes ``state_dict`` /
``load_state_dict`` so a training run can be checkpointed with its full
moment/velocity state and resumed bit-identically by the shared
:class:`repro.train.Trainer` engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor


def _master(x: np.ndarray) -> np.ndarray:
    """View/copy of ``x`` in float64 — the master dtype for update math.

    Optimiser arithmetic always runs in float64 regardless of the active
    backend: moment buffers and parameter updates are where float32 rounding
    would otherwise accumulate step over step.  For float64 inputs this is a
    no-op (same array), keeping the reference backend bit-identical.
    """
    return np.asarray(x, dtype=np.float64)


def _commit(param: Tensor, updated: np.ndarray) -> None:
    """Store a float64-computed update back at the parameter's own dtype."""
    if updated.dtype == param.data.dtype:
        param.data = updated
    else:
        param.data = updated.astype(param.data.dtype)


class Optimizer:
    """Base class tracking a parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- state round-trip ----------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Full optimiser state (scalars + per-parameter buffers)."""
        return {"lr": float(self.lr)}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.lr = float(state["lr"])

    def _check_buffer_count(self, buffers: List[np.ndarray], kind: str) -> None:
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"optimizer state has {len(buffers)} {kind} buffers for "
                f"{len(self.parameters)} parameters"
            )


def global_grad_norm(parameters: Iterable[Tensor]) -> float:
    """L2 norm of all parameter gradients taken together."""
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float(np.sum(param.grad * param.grad, dtype=np.float64))
    return float(np.sqrt(total))


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (mirroring ``torch.nn.utils.clip_grad_norm_``).
    """
    parameters = list(parameters)
    norm = global_grad_norm(parameters)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        # Velocity buffers are float64 master state even under float32 backends.
        self._velocity = [np.zeros_like(p.data, dtype=np.float64) for p in self.parameters]

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = _master(param.grad)
            if self.weight_decay:
                grad = grad + self.weight_decay * _master(param.data)
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            _commit(param, _master(param.data) - self.lr * grad)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        velocity = [np.asarray(v, dtype=np.float64) for v in state["velocity"]]
        self._check_buffer_count(velocity, "velocity")
        self._velocity = [v.copy() for v in velocity]


class Adam(Optimizer):
    """Adam optimiser with bias correction and optional weight decay (AdamW-style)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        # Moment buffers are float64 master state even under float32 backends.
        self._m = [np.zeros_like(p.data, dtype=np.float64) for p in self.parameters]
        self._v = [np.zeros_like(p.data, dtype=np.float64) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = _master(param.grad)
            if self.grad_clip is not None:
                norm = np.linalg.norm(grad)
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            data = _master(param.data)
            if self.weight_decay:
                data = data * (1.0 - self.lr * self.weight_decay)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / (1 - self.beta1 ** self._t)
            v_hat = self._v[i] / (1 - self.beta2 ** self._t)
            _commit(param, data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps))

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["t"] = int(self._t)
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        m = [np.asarray(x, dtype=np.float64) for x in state["m"]]
        v = [np.asarray(x, dtype=np.float64) for x in state["v"]]
        self._check_buffer_count(m, "first-moment")
        self._check_buffer_count(v, "second-moment")
        self._m = [x.copy() for x in m]
        self._v = [x.copy() for x in v]
        self._t = int(state["t"])


class CosineSchedule:
    """Cosine learning-rate schedule with linear warmup, applied to an optimiser."""

    def __init__(self, optimizer: Optimizer, total_steps: int, warmup_steps: int = 0, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self.warmup_steps and self._step <= self.warmup_steps:
            lr = self.base_lr * self._step / self.warmup_steps
        else:
            progress = (self._step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
            progress = min(1.0, progress)
            lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> Dict[str, object]:
        return {"step": int(self._step), "base_lr": float(self.base_lr)}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._step = int(state["step"])
        self.base_lr = float(state["base_lr"])


class ConstantSchedule:
    """No-op schedule so the training engine always has a schedule object."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer

    def step(self) -> float:
        return self.optimizer.lr

    def state_dict(self) -> Dict[str, object]:
        return {}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        pass
