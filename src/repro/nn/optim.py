"""Optimisers for training the NetTAG encoders and baselines.

The paper trains ExprLLM with LoRA for one epoch and TAGFormer for 50 epochs
using standard Adam-style optimisation; the same optimisers are provided here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class tracking a parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser with bias correction and optional weight decay (AdamW-style)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.grad_clip is not None:
                norm = np.linalg.norm(grad)
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            if self.weight_decay:
                param.data = param.data * (1.0 - self.lr * self.weight_decay)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / (1 - self.beta1 ** self._t)
            v_hat = self._v[i] / (1 - self.beta2 ** self._t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CosineSchedule:
    """Cosine learning-rate schedule with linear warmup, applied to an optimiser."""

    def __init__(self, optimizer: Optimizer, total_steps: int, warmup_steps: int = 0, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self.warmup_steps and self._step <= self.warmup_steps:
            lr = self.base_lr * self._step / self.warmup_steps
        else:
            progress = (self._step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
            progress = min(1.0, progress)
            lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))
        self.optimizer.lr = lr
        return lr
