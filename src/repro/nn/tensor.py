"""A small reverse-mode automatic differentiation engine on top of numpy.

This module provides the :class:`Tensor` class used by every neural network
component in the NetTAG reproduction (ExprLLM, TAGFormer, the auxiliary RTL and
layout encoders, the baseline GNNs and all MLP heads).  The paper trains its
models with PyTorch on GPUs; this repository substitutes a compact, dependency
free autograd engine so that the full pre-training and fine-tuning code paths
run on CPU with only numpy installed.

Only the operations required by the model zoo are implemented, but each of them
supports broadcasting and arbitrary batch dimensions, mirroring the semantics
of the corresponding numpy / PyTorch operations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import get_backend

ArrayLike = Union[np.ndarray, float, int, Sequence[float], Sequence[Sequence[float]]]


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    if dtype is None:
        dtype = get_backend().compute_dtype
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to reverse numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autograd graph wrapping a numpy array.

    Parameters
    ----------
    data:
        Array contents; converted to the active backend's compute dtype
        (``float64`` for the default ``reference`` backend).
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Iterable["Tensor"] = (),
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = tuple(_prev)
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Pickling (spawn-safe worker transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Tuple[np.ndarray, Optional[np.ndarray], bool, str]:
        """Pickle a tensor as a graph *leaf*.

        The autograd closures (``_backward``/``_prev``) reference local
        functions and cannot cross a process boundary; a pickled tensor
        therefore carries only its value, gradient buffer and flags.  That is
        exactly what the data-parallel workers need: modules travel to a
        worker once, and every subsequent forward rebuilds a fresh graph.
        """
        return (self.data, self.grad, self.requires_grad, self.name)

    def __setstate__(self, state: Tuple[np.ndarray, Optional[np.ndarray], bool, str]) -> None:
        data, grad, requires_grad, name = state
        self.data = data
        self.grad = grad
        self.requires_grad = requires_grad
        self.name = name
        self._backward = lambda: None
        self._prev = ()

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, dtype=self.data.dtype)

        # Iterative topological sort to avoid recursion limits on deep graphs.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _prev=(self, other),
        )

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(_unbroadcast(out.grad, self.shape))
            other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = _backward
        return out

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _prev=(self, other),
        )

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = _backward
        return out

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        out = Tensor(
            np.power(self.data, exponent),
            requires_grad=self.requires_grad,
            _prev=(self,),
        )

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * exponent * np.power(self.data, exponent - 1.0))

        out._backward = _backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def sqrt(self) -> "Tensor":
        return self.pow(0.5)

    def exp(self) -> "Tensor":
        out_data = get_backend().exp(self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * out_data)

        out._backward = _backward
        return out

    def log(self, eps: float = 1e-12) -> "Tensor":
        out = Tensor(np.log(self.data + eps), requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad / (self.data + eps))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        out_data, mask = get_backend().relu(self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * mask)

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        out_data = get_backend().tanh(self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * (1.0 - out_data ** 2))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out_data = get_backend().sigmoid(self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * out_data * (1.0 - out_data))

        out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        backend = get_backend()
        x = self.data
        out_data, tanh_inner = backend.gelu(x)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(backend.gelu_backward(out.grad, x, tanh_inner))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = get_backend().sum(self.data, axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    grad = np.expand_dims(grad, a)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            grad = out.grad
            expanded = grad if keepdims else np.expand_dims(grad, axis)
            max_expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (self.data == max_expanded).astype(self.data.dtype)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * expanded)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(self.data.reshape(shape), requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes_tuple: Optional[Tuple[int, ...]] = None
        else:
            axes_tuple = tuple(axes)
        out = Tensor(np.transpose(self.data, axes_tuple), requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            if axes_tuple is None:
                self._accumulate(np.transpose(out.grad))
            else:
                inverse = np.argsort(axes_tuple)
                self._accumulate(np.transpose(out.grad, inverse))

        out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = Tensor(self.data[index], requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor(
            get_backend().matmul(self.data, other.data),
            requires_grad=self.requires_grad or other.requires_grad,
            _prev=(self, other),
        )

        def _backward() -> None:
            if out.grad is None:
                return
            grad = out.grad
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            a2 = a if a.ndim > 1 else a.reshape(1, -1)
            b2 = b if b.ndim > 1 else b.reshape(-1, 1)
            grad2 = grad
            if a.ndim == 1:
                grad2 = grad.reshape(1, *grad.shape) if grad.ndim == b.ndim - 1 else grad
            if b.ndim == 1:
                grad2 = grad2.reshape(*grad2.shape, 1)
            grad_a = grad2 @ np.swapaxes(b2, -1, -2)
            grad_b = np.swapaxes(a2, -1, -2) @ grad2
            self._accumulate(_unbroadcast(grad_a.reshape(a2.shape) if a.ndim > 1 else grad_a.reshape(a.shape), a.shape))
            other._accumulate(_unbroadcast(grad_b if b.ndim > 1 else grad_b.reshape(b.shape), b.shape))

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Softmax-family helpers (fused for numerical stability)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        backend = get_backend()
        out_data = backend.softmax(self.data, axis=axis)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(backend.softmax_backward(out.grad, out_data, axis=axis))

        out._backward = _backward
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        backend = get_backend()
        out_data = backend.log_softmax(self.data, axis=axis)
        out = Tensor(out_data, requires_grad=self.requires_grad, _prev=(self,))

        def _backward() -> None:
            if out.grad is None:
                return
            self._accumulate(backend.log_softmax_backward(out.grad, out_data, axis=axis))

        out._backward = _backward
        return out


# ----------------------------------------------------------------------
# Free functions building on Tensor
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor(data, requires_grad=any(t.requires_grad for t in tensors), _prev=tuple(tensors))
    sizes = [t.data.shape[axis] for t in tensors]

    def _backward() -> None:
        if out.grad is None:
            return
        start = 0
        for t, size in zip(tensors, sizes):
            index = [slice(None)] * out.grad.ndim
            index[axis] = slice(start, start + size)
            t._accumulate(out.grad[tuple(index)])
            start += size

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor(data, requires_grad=any(t.requires_grad for t in tensors), _prev=tuple(tensors))

    def _backward() -> None:
        if out.grad is None:
            return
        grads = np.split(out.grad, len(tensors), axis=axis)
        for t, g in zip(tensors, grads):
            t._accumulate(np.squeeze(g, axis=axis).reshape(t.shape))

    out._backward = _backward
    return out


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``table`` by integer ``indices`` (supports any index shape)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = Tensor(table.data[indices], requires_grad=table.requires_grad, _prev=(table,))

    def _backward() -> None:
        if out.grad is None:
            return
        grad = np.zeros_like(table.data)
        np.add.at(grad, indices, out.grad)
        table._accumulate(grad)

    out._backward = _backward
    return out


def where_mask(mask: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``mask ? a : b`` where ``mask`` is a constant array."""
    mask = np.asarray(mask, dtype=bool)
    out = Tensor(
        np.where(mask, a.data, b.data),
        requires_grad=a.requires_grad or b.requires_grad,
        _prev=(a, b),
    )

    def _backward() -> None:
        if out.grad is None:
            return
        a._accumulate(_unbroadcast(out.grad * mask, a.shape))
        b._accumulate(_unbroadcast(out.grad * (~mask), b.shape))

    out._backward = _backward
    return out
