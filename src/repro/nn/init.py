"""Weight initialisation helpers for the numpy NN framework."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

_DEFAULT_RNG = np.random.default_rng(1234)


def _rng_or_default(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else _DEFAULT_RNG


def xavier_uniform(shape: Sequence[int], gain: float = 1.0, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    rng = _rng_or_default(rng)
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=tuple(shape))


def kaiming_uniform(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming uniform initialisation (ReLU networks)."""
    rng = _rng_or_default(rng)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=tuple(shape))


def normal(shape: Sequence[int], std: float = 0.02, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Gaussian initialisation (embedding tables, small heads)."""
    rng = _rng_or_default(rng)
    return rng.normal(0.0, std, size=tuple(shape))


def zeros(shape: Sequence[int]) -> np.ndarray:
    return np.zeros(tuple(shape))


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initialisation shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out
