"""Functional building blocks shared by the encoders and training objectives.

The NetTAG paper relies on a handful of loss functions and normalisation
primitives: cross entropy (masked gate reconstruction, objective #2.1), mean
squared error (graph size prediction, objective #2.3), the InfoNCE contrastive
loss (objectives #1, #2.2 and #3) and layer normalisation inside the
transformer blocks.  They are implemented here on top of the autograd
:class:`~repro.nn.tensor.Tensor`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .backend import get_backend
from .tensor import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,)."""
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects 2-D logits of shape (N, C)")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError("targets must be a 1-D array matching the logits batch size")
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(len(targets)), targets]
    return -picked.mean()


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    targets = np.asarray(targets, dtype=np.float64)
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()


def l1_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean absolute error implemented as sqrt((x)^2 + eps) for differentiability."""
    targets = np.asarray(targets, dtype=np.float64)
    diff = predictions - Tensor(targets)
    return ((diff * diff) + 1e-12).pow(0.5).mean()


def normalize(x: Tensor, axis: int = -1, eps: float = 1e-8) -> Tensor:
    """L2-normalise ``x`` along ``axis`` (used before every contrastive loss)."""
    norm = (x * x).sum(axis=axis, keepdims=True).pow(0.5)
    return x * (norm + eps).pow(-1.0)


def info_nce(
    anchors: Tensor,
    positives: Tensor,
    temperature: float = 0.1,
) -> Tensor:
    """InfoNCE loss used by objectives #1, #2.2 and #3 of the paper.

    Each row of ``anchors`` is matched with the same row of ``positives``;
    every other row in the batch acts as a negative.  Both inputs have shape
    ``(batch, dim)`` and are L2-normalised internally.
    """
    if anchors.shape != positives.shape:
        raise ValueError("anchors and positives must have identical shapes")
    if anchors.shape[0] < 2:
        raise ValueError("InfoNCE needs at least two samples in the batch")
    a = normalize(anchors)
    p = normalize(positives)
    logits = a @ p.transpose() * (1.0 / temperature)
    targets = np.arange(anchors.shape[0])
    return cross_entropy(logits, targets)


def symmetric_info_nce(a: Tensor, b: Tensor, temperature: float = 0.1) -> Tensor:
    """Symmetrised InfoNCE (both directions), used for cross-stage alignment."""
    return (info_nce(a, b, temperature) + info_nce(b, a, temperature)) * 0.5


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension.

    Backends with fused kernels enabled take the single-node
    :func:`fused_layer_norm` path; the reference backend keeps the composed
    autograd expression, which is bit-identical to the historical
    implementation.
    """
    if get_backend().fused:
        return fused_layer_norm(x, gamma, beta, eps=eps)
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    var = (centred * centred).mean(axis=-1, keepdims=True)
    inv_std = (var + eps).pow(-0.5)
    return centred * inv_std * gamma + beta


def fused_layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer norm as one autograd node backed by the active backend's kernel."""
    backend = get_backend()
    out_data, cache = backend.layer_norm(x.data, gamma.data, beta.data, eps)
    requires_grad = x.requires_grad or gamma.requires_grad or beta.requires_grad
    out = Tensor(out_data, requires_grad=requires_grad, _prev=(x, gamma, beta))

    def _backward() -> None:
        if out.grad is None:
            return
        dx, dgamma, dbeta = backend.layer_norm_backward(out.grad, cache)
        x._accumulate(dx)
        gamma._accumulate(dgamma)
        beta._accumulate(dbeta)

    out._backward = _backward
    return out


def fused_linear(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """``activation(x @ weight + bias)`` as one autograd node.

    Collapses what would be two to four graph nodes (matmul, broadcast add,
    nonlinearity) into a single node whose forward and backward run entirely
    inside the backend kernel — no intermediate ``Tensor`` allocations.
    """
    backend = get_backend()
    out_data, cache = backend.linear(
        x.data, weight.data, None if bias is None else bias.data, activation
    )
    requires_grad = (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    prev = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor(out_data, requires_grad=requires_grad, _prev=prev)

    def _backward() -> None:
        if out.grad is None:
            return
        dx, dweight, dbias = backend.linear_backward(out.grad, cache)
        x._accumulate(dx)
        weight._accumulate(dweight)
        if bias is not None and dbias is not None:
            bias._accumulate(dbias)

    out._backward = _backward
    return out


def dropout_mask(shape: Sequence[int], rate: float, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Return an inverted-dropout mask (scaled keep mask).

    ``rng`` is required whenever dropout is active: an unseeded fallback here
    would let a training path go silently nondeterministic, breaking the
    repo's bit-exact resume guarantees.
    """
    dtype = get_backend().compute_dtype
    if rate <= 0.0:
        return np.ones(shape, dtype=dtype)
    if rng is None:
        raise ValueError(
            "dropout_mask requires an explicit rng when rate > 0; pass the "
            "module's seeded generator (see nn.layers.Dropout)"
        )
    keep = (rng.random(shape) >= rate).astype(dtype)
    return keep / max(1.0 - rate, 1e-8)


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    """Plain numpy cosine similarity between row sets (no gradients)."""
    a_norm = a / (np.linalg.norm(a, axis=-1, keepdims=True) + eps)
    b_norm = b / (np.linalg.norm(b, axis=-1, keepdims=True) + eps)
    return a_norm @ b_norm.T
