"""NetTAG reproduction library.

A complete, pure-Python reproduction of "NetTAG: A Multimodal RTL-and-Layout-
Aligned Netlist Foundation Model via Text-Attributed Graph" (DAC 2025),
including every substrate the paper depends on: RTL generation, logic
synthesis, physical design, timing/power/area analysis, the symbolic
expression engine, the multimodal encoders (ExprLLM + TAGFormer), the
self-supervised pre-training objectives, cross-stage alignment and the four
downstream evaluation tasks with their task-specific baselines.

Subpackages
-----------
``repro.nn``        numpy autograd + neural-network framework
``repro.expr``      symbolic Boolean expression engine
``repro.cells``     standard-cell library substrate
``repro.netlist``   netlist IR, Verilog IO, cones, TAG formulation, AIG
``repro.rtl``       RTL IR and benchmark generators
``repro.synth``     logic synthesis (bit-blasting + technology mapping)
``repro.physical``  placement, parasitics, physical optimisation, layout graphs
``repro.analysis``  static timing, power and area analysis
``repro.encoders``  ExprLLM, TAGFormer, RTL/layout encoders, baseline GNNs
``repro.pretrain``  self-supervised objectives and pre-training loops
``repro.ml``        gradient-boosted trees, MLP heads and metrics
``repro.core``      the NetTAG foundation model, fine-tuning and pipeline
``repro.tasks``     downstream task datasets, runners and baselines
``repro.bench``     experiment harness regenerating every table and figure
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
