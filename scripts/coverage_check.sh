#!/usr/bin/env bash
# Tier-1 line-coverage gate for src/repro.
#
#   scripts/coverage_check.sh            # run tier-1 under coverage, enforce the floor
#   COVERAGE_FLOOR=90 scripts/coverage_check.sh   # override the floor
#
# Runs the tier-1 selection (bench/slow excluded) under coverage.py when it is
# installed (the CI "coverage" job installs it via requirements-dev.txt), and
# under the vendored stdlib tracer scripts/linecov.py otherwise, then fails if
# total line coverage over src/repro drops below the pinned floor.
#
# The floor is measured-and-pinned: the vendored tracer reported 88.74% over
# src/repro on this selection when the gate landed, and the pin sits one
# point below per the usual current-minus-1pt policy.  coverage.py reads the
# same tree slightly HIGHER than linecov (it honours `pragma: no cover`
# exclusions; linecov counts every co_lines() line), so the floor holds under
# either tool; if they ever diverge past the slack, trust coverage.py and
# re-pin.
#
# Raise the floor when coverage improves; never lower it to admit a regression
# without a recorded reason here.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

FLOOR="${COVERAGE_FLOOR:-87.7}"
# tests/ only: the benchmarks/ guard files assert wall-clock speedup floors,
# which tracer overhead (coverage.py's, and the fallback's even more so)
# would flake; they still run untraced in the tier-1 and bench jobs.
PYTEST_ARGS=(-q -m "not bench and not slow" --ignore=benchmarks)

if python -c "import coverage" >/dev/null 2>&1; then
  echo "==> coverage.py: tier-1 under coverage (floor ${FLOOR}%)"
  python -m coverage run --source=src/repro -m pytest "${PYTEST_ARGS[@]}"
  python -m coverage report --fail-under="$FLOOR" | tail -n 12
else
  echo "==> coverage.py not installed; vendored fallback tracer (floor ${FLOOR}%)"
  python scripts/linecov.py --include src/repro --floor "$FLOOR" -- "${PYTEST_ARGS[@]}"
fi

echo "==> coverage gate OK (floor ${FLOOR}%)"
