#!/usr/bin/env python
"""Check that every fenced code block in the documentation stays valid.

Usage::

    PYTHONPATH=src python scripts/check_docs.py [FILES...]

Defaults to ``README.md`` plus every ``docs/*.md``.  Two kinds of fenced
blocks are checked:

* ```` ```python ```` blocks must **compile** (syntax-checked against the
  running interpreter — a renamed API that a block still calls is caught by
  the docstring/test suites, a block that no longer parses is caught here),
* ```` ```pycon ```` blocks (doctest-style ``>>>`` transcripts) are
  **executed** and their outputs compared, exactly like doctests.

Exit code 1 lists every failing block with its file and line.  The same
checks run in CI (the ``docs`` job) and in the tier-1 suite
(``tests/test_docs.py``), so documentation code cannot rot silently.
"""

from __future__ import annotations

import doctest
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Fence languages treated as compile-checked Python.
PYTHON_LANGUAGES = ("python", "py")
#: Fence languages treated as executable doctest transcripts.
DOCTEST_LANGUAGES = ("pycon",)


def default_documents(root: Path = REPO_ROOT) -> List[Path]:
    """README plus every markdown file under ``docs/``."""
    documents = [root / "README.md"]
    documents.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in documents if path.exists()]


def iter_code_blocks(path: Path) -> Iterator[Tuple[str, int, str]]:
    """Yield ``(language, first_line_number, source)`` per fenced block."""
    language = None
    start = 0
    lines: List[str] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if language is None:
            if stripped.startswith("```") and stripped != "```":
                language = stripped[3:].strip().lower()
                start = number + 1
                lines = []
        elif stripped == "```":
            yield language, start, "\n".join(lines) + "\n"
            language = None
        else:
            lines.append(line)


def check_python_block(path: Path, line: int, source: str) -> List[str]:
    """Compile one ``python`` block; returns failure messages."""
    try:
        compile(source, f"{path}:{line}", "exec")
    except SyntaxError as error:
        return [f"{path}:{line}: python block does not compile: {error}"]
    return []


def check_doctest_block(path: Path, line: int, source: str) -> List[str]:
    """Execute one ``pycon`` block as a doctest; returns failure messages."""
    parser = doctest.DocTestParser()
    try:
        test = parser.get_doctest(source, {}, name=f"{path}:{line}", filename=str(path), lineno=line)
    except ValueError as error:
        return [f"{path}:{line}: unparsable doctest block: {error}"]
    failures: List[str] = []

    class _Runner(doctest.DocTestRunner):
        def report_failure(self, out, test, example, got):  # noqa: D102
            failures.append(
                f"{path}:{line + example.lineno}: doctest got {got.strip()!r}, "
                f"expected {example.want.strip()!r}"
            )

        def report_unexpected_exception(self, out, test, example, exc_info):  # noqa: D102
            failures.append(
                f"{path}:{line + example.lineno}: doctest raised "
                f"{exc_info[1]!r} running {example.source.strip()!r}"
            )

    _Runner(verbose=False).run(test, out=lambda text: None)
    return failures


def check_document(path: Path) -> Tuple[int, List[str]]:
    """Check one markdown file; returns ``(blocks_checked, failures)``."""
    checked = 0
    failures: List[str] = []
    for language, line, source in iter_code_blocks(path):
        if language in PYTHON_LANGUAGES:
            checked += 1
            failures.extend(check_python_block(path, line, source))
        elif language in DOCTEST_LANGUAGES:
            checked += 1
            failures.extend(check_doctest_block(path, line, source))
    return checked, failures


def main(argv: List[str]) -> int:
    documents = [Path(arg) for arg in argv] or default_documents()
    total = 0
    failures: List[str] = []
    for path in documents:
        checked, document_failures = check_document(path)
        total += checked
        failures.extend(document_failures)
        status = "FAIL" if document_failures else "ok"
        print(f"{status:>4}  {path} ({checked} checked blocks)")
    if failures:
        print()
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print(f"\n{total} documentation code blocks ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
