"""Developer smoke test for the model stack (not part of the test suite)."""

import time


from repro.core import NetTAGConfig, NetTAGPipeline
from repro.rtl import make_controller, make_gnnre_design
from repro.synth import synthesize


def main() -> None:
    start = time.perf_counter()
    config = NetTAGConfig.fast()
    pipeline = NetTAGPipeline(config)
    pipeline.preprocess_corpus(designs_per_suite=1)
    print("preprocess done", time.perf_counter() - start, "s; cones:", pipeline.summary.num_cones)

    summary = pipeline.pretrain()
    print(
        "pretrain done", round(summary.total_seconds, 2), "s | expr loss",
        None if summary.expr_result is None else round(summary.expr_result.final_loss, 3),
        "| tag loss", None if summary.tag_result is None else round(summary.tag_result.final_loss, 3),
    )

    design = synthesize(make_gnnre_design(1, seed=3)).netlist
    embedding = pipeline.embed_circuit(design)
    print("circuit embedding dim", embedding.dim, "gates", embedding.gate_embeddings.shape)

    seq = synthesize(make_controller("itc99_b01", seed=5)).netlist
    seq_embedding = pipeline.embed_circuit(seq)
    print("sequential embedding cones:", len(seq_embedding.cone_embeddings))
    print("total", round(time.perf_counter() - start, 2), "s")


if __name__ == "__main__":
    main()
