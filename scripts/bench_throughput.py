#!/usr/bin/env python
"""Refresh ``BENCH_throughput.json`` (batched TAG encoding engine benchmark).

Usage::

    PYTHONPATH=src python scripts/bench_throughput.py [--designs N] [--repeats R]
        [--seed S] [--output PATH] [--baseline PATH] [--max-regression F]
        [--profile]

Times the batched :meth:`NetTAG.encode_batch` engine against the seed's
per-cone sequential path and the current per-cone API path on the same
register-cone workload — under both the ``reference`` and ``fast`` kernel
backends — and writes the per-gate latencies, speedups and
expression-embedding-cache statistics to the JSON report (repo root by
default, ``--output`` elsewhere).  ``--profile`` additionally prints a
per-kernel-op time breakdown for each backend.

Exit codes (for the CI bench job):

* ``1`` — parity failure: the batched engine's embeddings deviate from the
  seed-sequential reference by more than 1e-8, or the fast backend deviates
  from the reference backend by more than 1e-5 normwise relative.  Timing
  numbers for a wrong engine are meaningless, so parity is checked first.
* ``3`` — regression: a speedup ratio fell more than ``--max-regression``
  (default 0.25) below the committed ``--baseline`` report, or the
  expression-cache effective reuse rate dropped.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.bench.host import describe_host  # noqa: E402
from repro.bench.throughput import (  # noqa: E402
    build_cone_workload,
    check_regression,
    run_backend_parity,
    run_parity_check,
    run_profile,
    run_throughput,
    save_report,
)
from repro.core import NetTAG, NetTAGConfig  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", type=int, default=4, help="number of synthetic designs")
    parser.add_argument("--repeats", type=int, default=9,
                        help="best-of-N timing repeats (9: min-of-3 under-samples the fast "
                             "CPU mode on small workloads and destabilises the gated ratios)")
    parser.add_argument("--seed", type=int, default=7, help="model initialisation seed")
    parser.add_argument("--output", type=Path, default=None,
                        help="report path (default: BENCH_throughput.json at the repo root)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline report to gate speedup ratios against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="maximum tolerated relative speedup drop vs the baseline "
                             "(default: 0.25)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-kernel-op time breakdown for the reference "
                             "and fast backends")
    args = parser.parse_args()

    model = NetTAG(NetTAGConfig.fast(), rng=np.random.default_rng(args.seed))
    cones = build_cone_workload(num_designs=args.designs)

    try:
        max_diff = run_parity_check(model, cones)
    except AssertionError as failure:
        print(f"PARITY GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"parity ok (max batched-vs-sequential deviation {max_diff:.2e})")

    try:
        max_rel = run_backend_parity(model, cones)
    except AssertionError as failure:
        print(f"BACKEND PARITY GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"backend parity ok (max fast-vs-reference relative deviation {max_rel:.2e})")

    if args.profile:
        for backend in ("reference", "fast"):
            profile = run_profile(model=model, cones=cones, backend=backend)
            print(f"\nper-op kernel profile ({backend} backend):")
            for op, row in profile.items():
                mean_us = row["seconds"] / row["calls"] * 1e6 if row["calls"] else 0.0
                print(f"  {op:16s} calls={row['calls']:6d}  "
                      f"total={row['seconds'] * 1e3:9.3f}ms  "
                      f"mean={mean_us:8.2f}us")

    # Snapshot the baseline BEFORE the report is saved: CI gates with
    # `--baseline BENCH_throughput.json`, the very file save_report()
    # refreshes — reading it afterwards would compare the report to itself.
    baseline = json.loads(args.baseline.read_text()) if args.baseline is not None else None

    report = run_throughput(model=model, cones=cones, repeats=args.repeats)
    path = save_report(report, path=args.output)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}")
    print(describe_host(report["host"]))

    if baseline is not None:
        failures = check_regression(report, baseline, max_regression=args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION GATE FAILED: {failure}", file=sys.stderr)
            return 3
        print(f"no regression vs {args.baseline} (max tolerated {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
