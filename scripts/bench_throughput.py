#!/usr/bin/env python
"""Refresh ``BENCH_throughput.json`` (batched TAG encoding engine benchmark).

Usage::

    PYTHONPATH=src python scripts/bench_throughput.py [--designs N] [--repeats R]

Times the batched :meth:`NetTAG.encode_batch` engine against the seed's
per-cone sequential path and the current per-cone API path on the same
register-cone workload, and writes the per-gate latencies, speedups and
expression-embedding-cache statistics to the repo-root JSON report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.throughput import build_cone_workload, run_throughput, save_report  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", type=int, default=4, help="number of synthetic designs")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing repeats")
    args = parser.parse_args()

    cones = build_cone_workload(num_designs=args.designs)
    report = run_throughput(cones=cones, repeats=args.repeats)
    path = save_report(report)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
