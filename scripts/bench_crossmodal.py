#!/usr/bin/env python
"""Refresh ``BENCH_crossmodal.json`` (cross-modal retrieval benchmark).

Usage::

    PYTHONPATH=src python scripts/bench_crossmodal.py [--items N] [--queries Q]
        [--threads T] [--seed S] [--output PATH]
        [--baseline PATH] [--max-regression R]

Builds an aligned RTL/netlist/layout corpus, indexes every modality through
``NetTAGPipeline.build_multimodal_index``, and measures aligned-pair
retrieval recall@10 for every modality pair plus concurrent cross-modal
serving throughput against a stateless sequential per-query encoder.

Exit codes mirror ``scripts/bench_throughput.py``: 1 when a quality gate
fails (recall@10 ≥ 0.8, serving speedup ≥ 3x, serving-path parity), 3 when
the report regresses more than ``--max-regression`` below the committed
baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.crossmodal import (  # noqa: E402
    build_crossmodal_pipeline,
    run_crossmodal_bench,
    save_crossmodal_report,
)
from repro.bench.host import describe_host  # noqa: E402
from repro.bench.throughput import check_regression  # noqa: E402

REQUIRED_RECALL = 0.8
REQUIRED_SPEEDUP = 3.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--items", type=int, default=220,
                        help="minimum aligned corpus items (default: 220)")
    parser.add_argument("--queries", type=int, default=48, help="number of serving requests")
    parser.add_argument("--threads", type=int, default=32, help="concurrent client threads")
    parser.add_argument("--seed", type=int, default=7, help="model initialisation seed")
    parser.add_argument("--output", type=Path, default=None,
                        help="report path (default: BENCH_crossmodal.json at the repo root)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline report to gate regressions against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated relative drop vs the baseline (default: 0.25)")
    args = parser.parse_args()

    # Snapshot the baseline BEFORE the report is saved: CI gates with
    # `--baseline BENCH_crossmodal.json`, the very file the report refresh
    # overwrites — reading it afterwards would compare the report to itself.
    baseline = None
    if args.baseline is not None and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())

    pipeline = build_crossmodal_pipeline(min_items=args.items, seed=args.seed)
    report = run_crossmodal_bench(
        pipeline=pipeline,
        min_items=args.items,
        num_queries=args.queries,
        num_threads=args.threads,
        seed=args.seed,
    )
    path = save_crossmodal_report(report, path=args.output)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}")
    print(describe_host(report["host"]))

    failures = []
    recall = report["quality"]["aligned_pair_recall_at_10"]
    speedup = report["speedup"]["concurrent_vs_sequential"]
    if recall < REQUIRED_RECALL:
        failures.append(f"aligned-pair recall@10 {recall} < {REQUIRED_RECALL}")
    if speedup < REQUIRED_SPEEDUP:
        failures.append(f"concurrent serving speedup {speedup}x < {REQUIRED_SPEEDUP}x")
    if not report["quality"]["ranking_parity"]:
        failures.append("sequential and concurrent serving scores disagree")
    if failures:
        for failure in failures:
            print(f"QUALITY GATE FAILED: {failure}", file=sys.stderr)
        return 1

    if baseline is not None:
        regressions = check_regression(report, baseline, max_regression=args.max_regression)
        base_recall = baseline.get("quality", {}).get("aligned_pair_recall_at_10")
        if base_recall and recall < base_recall * (1.0 - args.max_regression):
            regressions.append(
                f"recall@10 {recall} fell more than {args.max_regression:.0%} below "
                f"the baseline {base_recall}"
            )
        if regressions:
            for regression in regressions:
                print(f"REGRESSION: {regression}", file=sys.stderr)
            return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
