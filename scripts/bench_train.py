#!/usr/bin/env python
"""Refresh ``BENCH_train.json`` (data-parallel pretraining engine benchmark).

Usage::

    PYTHONPATH=src python scripts/bench_train.py [--workers 1,4] [--steps N]
        [--batch-size N] [--world-size N] [--shard-size N] [--seed S]
        [--output PATH] [--baseline PATH] [--max-regression F] [--min-speedup F]

Runs the same expression-contrastive pre-training workload once per worker
count (identical seed/corpus/world_size) and reports wall-clock seconds,
speedup ratios and the parity verdict.

Exit codes (for the CI bench job):

* ``1`` — parity failure: a worker count produced different loss curves or
  final weights than the baseline count.  The ordered all-reduce guarantees
  bit-identical results, so any divergence is a correctness bug and timing
  numbers are meaningless.
* ``2`` — speedup floor: the multi-worker run is slower than ``--min-speedup``
  (default 2.5x) relative to one worker.  Only enforced when the machine has
  at least 4 usable cores — process parallelism cannot beat the core count.
* ``3`` — regression: a speedup ratio fell more than ``--max-regression``
  (default 0.25) below the committed ``--baseline`` report (only when that
  baseline was itself measured with an active gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.host import describe_host  # noqa: E402
from repro.bench.train import (  # noqa: E402
    MIN_SPEEDUP,
    check_regression,
    check_speedup,
    run_parity_check,
    run_train_bench,
    save_report,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=str, default="1,4",
                        help="comma list of worker counts; the first is the baseline "
                             "(default: 1,4)")
    parser.add_argument("--steps", type=int, default=24, help="optimiser steps per run")
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--world-size", type=int, default=4,
                        help="gradient lanes (fixed across worker counts)")
    parser.add_argument("--shard-size", type=int, default=64,
                        help="on-disk corpus shard size (items)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--expressions", type=int, default=256,
                        help="corpus size (random Boolean expressions)")
    parser.add_argument("--output", type=Path, default=None,
                        help="report path (default: BENCH_train.json at the repo root)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline report to gate speedup ratios against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="maximum tolerated relative speedup drop vs the baseline")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="required multi-worker speedup when >= 4 cores are "
                             f"available (default: {MIN_SPEEDUP})")
    args = parser.parse_args()

    # Snapshot the baseline BEFORE the report is saved: CI gates with
    # `--baseline BENCH_train.json`, the very file save_report() refreshes —
    # reading it afterwards would compare the report to itself.
    baseline = json.loads(args.baseline.read_text()) if args.baseline is not None else None

    workers = [int(w) for w in args.workers.split(",") if w.strip()]
    report = run_train_bench(
        workers=workers,
        num_steps=args.steps,
        batch_size=args.batch_size,
        world_size=args.world_size,
        shard_size=args.shard_size,
        seed=args.seed,
        num_expressions=args.expressions,
        min_speedup=args.min_speedup,
    )
    path = save_report(report, path=args.output)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}")
    print(describe_host(report["host"]))

    try:
        run_parity_check(report)
    except AssertionError as failure:
        print(f"PARITY GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("parity ok (loss curves + final weights bit-identical across worker counts)")

    speedup_failures = check_speedup(report)
    if speedup_failures:
        for failure in speedup_failures:
            print(f"SPEEDUP GATE FAILED: {failure}", file=sys.stderr)
        return 2
    gate = report["speedup_gate"]
    if gate["active"]:
        print(f"speedup gate ok (>= {gate['threshold']}x on {gate['cores']} cores)")
    else:
        print(
            f"speedup gate inactive ({gate['cores']} usable core(s) < 4): "
            "ratios recorded for reference only"
        )

    if baseline is not None:
        failures = check_regression(report, baseline, max_regression=args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION GATE FAILED: {failure}", file=sys.stderr)
            return 3
        print(f"no regression vs {args.baseline} (max tolerated {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
