#!/usr/bin/env bash
# Mirror the CI matrix locally, no make required.
#
#   scripts/ci_check.sh          # lint + tier-1 tests + coverage + compile/smoke
#   scripts/ci_check.sh --fast   # skip the model smoke and the coverage gate
#
# Mirrors .github/workflows/ci.yml job for job: the lint job (ruff, hard-error
# + docstring rules from ruff.toml), the tier-1 test job (bench/slow excluded;
# CI runs it on 3.10 and 3.12 — locally you get whichever python is first on
# PATH), the coverage job (tier-1 rerun under coverage.py or the vendored
# scripts/linecov.py tracer, pinned floor — see scripts/coverage_check.sh),
# the docs job (fenced code blocks in README.md/docs/*.md), and the compile +
# model smoke job.  The scheduled benchmark workflow
# (.github/workflows/bench.yml) is NOT mirrored here; run
# scripts/bench_throughput.py / scripts/bench_index.py /
# scripts/bench_crossmodal.py / scripts/bench_train.py for that.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
if [ "${1:-}" = "--fast" ]; then
  fast=1
fi

step() { printf '\n==> %s\n' "$1"; }

step "lint: ruff check (hard-error rules)"
if command -v ruff >/dev/null 2>&1; then
  ruff check src tests benchmarks scripts examples
elif python -m ruff --version >/dev/null 2>&1; then
  python -m ruff check src tests benchmarks scripts examples
else
  echo "ruff not installed — skipping lint locally (CI still runs it;"
  echo "install with: python -m pip install -r requirements-dev.txt)"
fi

step "tier-1 tests on $(python --version 2>&1) (CI matrix: 3.10 + 3.12)"
python -m pytest -x -q -m "not bench and not slow"

if [ "$fast" -eq 0 ]; then
  step "tier-1 tests under the fast kernel backend (REPRO_BACKEND=fast)"
  REPRO_BACKEND=fast python -m pytest -x -q -m "not bench and not slow"
fi

step "docs: fenced code blocks compile, doctests run"
python scripts/check_docs.py

step "byte-compile every module"
python -m compileall -q src tests benchmarks scripts examples

if [ "$fast" -eq 1 ]; then
  step "ci_check OK (--fast: fast-backend leg, coverage gate and model smoke skipped)"
  exit 0
fi

step "coverage gate (tier-1 rerun under coverage, pinned floor)"
bash scripts/coverage_check.sh

step "end-to-end model smoke"
python scripts/smoke_model.py

step "ci_check OK"
