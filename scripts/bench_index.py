#!/usr/bin/env python
"""Refresh ``BENCH_index.json`` (embedding index + concurrent serving benchmark).

Usage::

    PYTHONPATH=src python scripts/bench_index.py [--cones N] [--queries Q]
        [--threads T] [--seed S] [--output PATH]
        [--scale] [--scale-vectors N] [--replicas N] [--baseline PATH]
        [--max-regression F]

Builds a register-cone corpus, indexes it through ``repro.serve``, and
measures round-trip exactness, IVF recall@10 vs exact search, and the
latency of concurrent micro-batched serving against sequential per-query
encoding.  With ``--scale`` it also runs the corpus-scale serving-tier
benchmark (``hnsw_scale`` section): HNSW vs IVF recall/latency on a
100k-vector clustered corpus plus sustained QPS through the
generation-pinned snapshot read path under concurrent ingest.

Exits non-zero when a quality gate fails, so CI can gate on it:

* exact round trip, ranking parity, IVF recall ≥ 0.9 (500-cone corpus);
* with ``--scale``: HNSW recall@10 ≥ 0.95, HNSW per-query latency ≤ the
  recall-matched IVF configuration's, sustained QPS > 0 under ingest, and
  (with ``--baseline``) no metric regressing more than ``--max-regression``
  against the committed ``BENCH_index.json``;
* replica leg (part of ``--scale``; ``--replicas N`` picks the peak count):
  a persisted HNSW sidecar must load back bit-identically, the
  multi-process legs must finish with zero client errors, and — only when
  the run's ``speedup_gate`` is active (≥ 2 cores) — aggregate replica QPS
  must reach the gate's N-vs-1 floor.  Baseline floors for the replica
  speedup apply only when the baseline's own gate was active (a 1-core
  baseline ratio is noise, not a floor).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.bench.host import describe_host  # noqa: E402
from repro.bench.index_throughput import (  # noqa: E402
    build_index_corpus,
    run_index_bench,
    run_index_scale_bench,
    save_index_report,
)
from repro.core import NetTAG, NetTAGConfig  # noqa: E402


def _scale_gates(report: dict, baseline: dict, max_regression: float) -> list:
    """Quality + regression gates for the ``hnsw_scale`` section."""
    failures = []
    hnsw = report["hnsw"]
    chosen = report["ivf"]["chosen"]
    qps = report["sustained_qps_under_ingest"]
    if hnsw["recall_at_k"] < 0.95:
        failures.append(f"HNSW recall@10 {hnsw['recall_at_k']} < 0.95")
    if hnsw["per_query_ms"] > chosen["per_query_ms"]:
        failures.append(
            f"HNSW per-query {hnsw['per_query_ms']}ms slower than the "
            f"recall-matched IVF config (nprobe={chosen['nprobe']}, "
            f"{chosen['per_query_ms']}ms)"
        )
    if qps["qps"] <= 0 or qps["rows_ingested"] <= 0:
        failures.append("sustained-QPS-under-ingest bench made no progress")
    previous = baseline.get("hnsw_scale") if baseline else None
    if previous:
        floor = previous["hnsw"]["recall_at_k"] * (1 - max_regression)
        if hnsw["recall_at_k"] < floor:
            failures.append(
                f"HNSW recall regressed: {hnsw['recall_at_k']} < {floor:.4f} "
                f"(baseline {previous['hnsw']['recall_at_k']} - {max_regression:.0%})"
            )
        qps_floor = previous["sustained_qps_under_ingest"]["qps"] * (1 - max_regression)
        if qps["qps"] < qps_floor:
            failures.append(
                f"sustained QPS regressed: {qps['qps']} < {qps_floor:.1f} "
                f"(baseline {previous['sustained_qps_under_ingest']['qps']} "
                f"- {max_regression:.0%})"
            )
    failures.extend(_replica_gates(report.get("replicas"), previous, max_regression))
    return failures


def _replica_gates(replicas: dict, previous: dict, max_regression: float) -> list:
    """Gates for the multi-process replica leg of the ``--scale`` run."""
    if not replicas:
        return []
    failures = []
    if not replicas["hnsw_load_bit_identical"]:
        failures.append("persisted HNSW sidecar did not load back bit-identically")
    if replicas["total_errors"]:
        failures.append(
            f"replica legs finished with {replicas['total_errors']} client error(s)"
        )
    for run in replicas["runs"]:
        if run["queries"] <= 0:
            failures.append(
                f"replica leg with {run['replicas']} process(es) served no queries"
            )
    gate = replicas["speedup_gate"]
    speedup = replicas["speedup"]["aggregate_qps_vs_single"]
    if gate["active"] and speedup < gate["threshold"]:
        failures.append(
            f"replica aggregate QPS speedup {speedup}x below the "
            f"{gate['threshold']}x floor ({gate['cores']} cores available)"
        )
    # Baseline regression on the N-vs-1 ratio only when the baseline itself
    # was measured with an active gate — a 1-core ratio is noise, not a floor.
    prev_replicas = (previous or {}).get("replicas")
    if prev_replicas and prev_replicas.get("speedup_gate", {}).get("active"):
        prev_speedup = prev_replicas["speedup"]["aggregate_qps_vs_single"]
        floor = prev_speedup * (1 - max_regression)
        if gate["active"] and speedup < floor:
            failures.append(
                f"replica speedup regressed: {speedup}x < {floor:.2f}x "
                f"(baseline {prev_speedup}x - {max_regression:.0%})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cones", type=int, default=500, help="corpus size in register cones")
    parser.add_argument("--queries", type=int, default=48, help="number of serving requests")
    parser.add_argument("--threads", type=int, default=32, help="concurrent client threads")
    parser.add_argument("--seed", type=int, default=7, help="model initialisation seed")
    parser.add_argument("--output", type=Path, default=None,
                        help="report path (default: BENCH_index.json at the repo root)")
    parser.add_argument("--scale", action="store_true",
                        help="also run the corpus-scale HNSW/IVF/QPS benchmark")
    parser.add_argument("--scale-vectors", type=int, default=100_000,
                        help="corpus size for the --scale benchmark")
    parser.add_argument("--replicas", type=int, default=2,
                        help="peak replica-process count for the --scale "
                             "replica leg (0 skips the leg)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_index.json to regression-check --scale against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional regression vs the baseline")
    args = parser.parse_args()

    model = NetTAG(NetTAGConfig.fast(), rng=np.random.default_rng(args.seed))
    cones = build_index_corpus(num_cones=args.cones)
    report = run_index_bench(
        model=model, cones=cones, num_queries=args.queries, num_threads=args.threads
    )

    failures = []
    if not report["quality"]["round_trip_exact"]:
        failures.append("index round-trip is not exact")
    if not report["quality"]["ranking_parity"]:
        failures.append("sequential and concurrent rankings disagree")
    if report["quality"]["ivf_recall_at_10"] < 0.9:
        failures.append(
            f"IVF recall@10 {report['quality']['ivf_recall_at_10']} < 0.9"
        )

    if args.scale:
        baseline = {}
        if args.baseline is not None and args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
        replica_counts = (1, args.replicas) if args.replicas > 1 else (
            (1,) if args.replicas == 1 else ()
        )
        scale_report = run_index_scale_bench(
            num_vectors=args.scale_vectors, replica_counts=replica_counts
        )
        report["hnsw_scale"] = scale_report
        failures.extend(_scale_gates(scale_report, baseline, args.max_regression))

    path = save_index_report(report, path=args.output)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}")
    print(describe_host(report["host"]))

    if failures:
        for failure in failures:
            print(f"QUALITY GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
