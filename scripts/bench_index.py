#!/usr/bin/env python
"""Refresh ``BENCH_index.json`` (embedding index + concurrent serving benchmark).

Usage::

    PYTHONPATH=src python scripts/bench_index.py [--cones N] [--queries Q]
        [--threads T] [--seed S] [--output PATH]

Builds a register-cone corpus, indexes it through ``repro.serve``, and
measures round-trip exactness, IVF recall@10 vs exact search, and the
latency of concurrent micro-batched serving against sequential per-query
encoding.  Exits non-zero when a quality gate fails (exact round trip,
ranking parity, recall ≥ 0.9), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.bench.index_throughput import (  # noqa: E402
    build_index_corpus,
    run_index_bench,
    save_index_report,
)
from repro.core import NetTAG, NetTAGConfig  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cones", type=int, default=500, help="corpus size in register cones")
    parser.add_argument("--queries", type=int, default=48, help="number of serving requests")
    parser.add_argument("--threads", type=int, default=32, help="concurrent client threads")
    parser.add_argument("--seed", type=int, default=7, help="model initialisation seed")
    parser.add_argument("--output", type=Path, default=None,
                        help="report path (default: BENCH_index.json at the repo root)")
    args = parser.parse_args()

    model = NetTAG(NetTAGConfig.fast(), rng=np.random.default_rng(args.seed))
    cones = build_index_corpus(num_cones=args.cones)
    report = run_index_bench(
        model=model, cones=cones, num_queries=args.queries, num_threads=args.threads
    )
    path = save_index_report(report, path=args.output)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}")

    failures = []
    if not report["quality"]["round_trip_exact"]:
        failures.append("index round-trip is not exact")
    if not report["quality"]["ranking_parity"]:
        failures.append("sequential and concurrent rankings disagree")
    if report["quality"]["ivf_recall_at_10"] < 0.9:
        failures.append(
            f"IVF recall@10 {report['quality']['ivf_recall_at_10']} < 0.9"
        )
    if failures:
        for failure in failures:
            print(f"QUALITY GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
