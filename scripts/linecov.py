#!/usr/bin/env python
"""Minimal line-coverage tracer: the fallback behind scripts/coverage_check.sh.

The CI coverage job uses ``coverage.py`` (installed via requirements-dev.txt).
Environments that cannot install it (air-gapped containers, the bare repo
image) still need a way to *measure* against the pinned floor, so this script
implements the subset we gate on — line coverage over one source tree — with
only the standard library:

* ``sys.settrace`` (+ ``threading.settrace``) records executed lines, but only
  for files under ``--include``: the global trace function declines to trace
  any other frame, so the overhead concentrates where the measurement is.
* The denominator is every executable line of every ``*.py`` file under
  ``--include`` (imported or not), computed by compiling each file and walking
  the code objects' ``co_lines()`` tables — the same universe coverage.py
  reports for ``--source``.

Numbers track coverage.py closely but not to the decimal (it applies extra
AST-level exclusions); the gate keeps a full point of slack for that.

Usage::

    python scripts/linecov.py [--include src/repro] [--floor PCT]
        [--report-top N] -- [pytest args...]

Exit codes: pytest's own failures win; otherwise 4 when coverage < floor.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path
from typing import Dict, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]


class LineTracer:
    """Collects executed (file, line) pairs for files under one root."""

    def __init__(self, root: Path) -> None:
        self.root = str(root.resolve()) + os.sep
        self.executed: Dict[str, Set[int]] = {}
        # Keyed by the code object itself (not id(): ids get recycled after a
        # GC, which would mis-route the decision cache).
        self._decisions: Dict[object, bool] = {}

    def _global_trace(self, frame, event, arg):
        code = frame.f_code
        traced = self._decisions.get(code)
        if traced is None:
            traced = code.co_filename.startswith(self.root)
            self._decisions[code] = traced
        if not traced:
            return None
        filename = code.co_filename
        lines = self.executed.get(filename)
        if lines is None:
            lines = self.executed[filename] = set()
        if event == "call":
            lines.add(frame.f_lineno)
        return self._make_local(lines)

    def _make_local(self, lines: Set[int]):
        def _local(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return _local

        return _local

    def install(self) -> None:
        threading.settrace(self._global_trace)
        sys.settrace(self._global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def executable_lines(path: Path) -> Set[int]:
    """All line numbers carrying code in one source file (via co_lines)."""
    try:
        source = path.read_text()
        top = compile(source, str(path), "exec")
    except (SyntaxError, UnicodeDecodeError, OSError):
        return set()
    lines: Set[int] = set()
    stack = [top]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def measure(include: Path, pytest_args) -> Tuple[int, float, Dict[str, Tuple[int, int]]]:
    """Run pytest under the tracer; returns (pytest_rc, percent, per-file)."""
    import pytest

    tracer = LineTracer(include)
    tracer.install()
    try:
        pytest_rc = pytest.main(list(pytest_args))
    finally:
        tracer.uninstall()

    per_file: Dict[str, Tuple[int, int]] = {}
    total_executable = 0
    total_executed = 0
    for path in sorted(include.resolve().rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        candidates = executable_lines(path)
        if not candidates:
            continue
        hit = tracer.executed.get(str(path), set()) & candidates
        per_file[str(path.relative_to(REPO_ROOT))] = (len(hit), len(candidates))
        total_executable += len(candidates)
        total_executed += len(hit)
    percent = 100.0 * total_executed / total_executable if total_executable else 100.0
    return int(pytest_rc), percent, per_file


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--include", type=Path, default=REPO_ROOT / "src" / "repro",
                        help="source tree to measure (default: src/repro)")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail (exit 4) when total line coverage is below this")
    parser.add_argument("--report-top", type=int, default=10,
                        help="show the N least-covered files (default: 10)")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments forwarded to pytest (after --)")
    args = parser.parse_args()

    pytest_rc, percent, per_file = measure(args.include, args.pytest_args)

    worst = sorted(per_file.items(), key=lambda kv: kv[1][0] / max(kv[1][1], 1))
    print("\nlinecov: least-covered files:")
    for name, (hit, total) in worst[: args.report_top]:
        print(f"  {100.0 * hit / max(total, 1):6.1f}%  {hit:5d}/{total:<5d}  {name}")
    executed = sum(hit for hit, _ in per_file.values())
    executable = sum(total for _, total in per_file.values())
    print(f"linecov: TOTAL {percent:.2f}% ({executed}/{executable} lines, "
          f"{len(per_file)} files)")

    if pytest_rc != 0:
        return pytest_rc
    if args.floor is not None and percent < args.floor:
        print(f"linecov: FAILED — {percent:.2f}% is below the {args.floor:.2f}% floor",
              file=sys.stderr)
        return 4
    if args.floor is not None:
        print(f"linecov: ok (floor {args.floor:.2f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
