"""Developer smoke test for the EDA substrates (not part of the test suite)."""

from repro.rtl import make_gnnre_design, make_controller, render_module
from repro.synth import synthesize
from repro.netlist import netlist_to_tag, extract_register_cones, to_aig, write_verilog, read_verilog
from repro.physical import place, extract_parasitics, physically_optimize, build_layout_graph
from repro.analysis import analyze_timing, analyze_power, analyze_area
from repro.expr import parse, equivalent, random_equivalent
import numpy as np


def main() -> None:
    # Combinational GNN-RE-style design.
    module = make_gnnre_design(1, seed=3)
    result = synthesize(module)
    netlist = result.netlist
    print("gnnre design:", netlist.num_gates, "gates", result.cell_counts)
    tag = netlist_to_tag(netlist)
    print("TAG nodes:", tag.num_nodes, "| sample text:", tag.nodes[5].text[:120])
    aig = to_aig(netlist)
    print("AIG gates:", aig.num_gates)
    text = write_verilog(netlist)
    back = read_verilog(text, from_string=True)
    assert back.num_gates == netlist.num_gates

    # Sequential controller.
    seq_module = make_controller("itc99_b01", seed=5)
    print(render_module(seq_module)[:300])
    seq = synthesize(seq_module).netlist
    print("controller gates:", seq.num_gates, "registers:", len(seq.registers))
    cones = extract_register_cones(seq)
    print("cones:", len(cones), "sizes:", [c.num_gates for c in cones][:5])

    placement = place(seq)
    spef = extract_parasitics(seq, placement)
    timing = analyze_timing(seq, spef=spef)
    power = analyze_power(seq, spef=spef)
    area = analyze_area(seq, placement)
    print("WNS:", timing.worst_negative_slack, "power:", power.total, "area:", area.total)

    optimized, report = physically_optimize(seq, placement)
    print("phys opt changes:", report.total_changes)
    layout = build_layout_graph(optimized)
    print("layout nodes:", layout.num_nodes)

    expr = parse("!((R1 ^ R2) | !R2)")
    aug = random_equivalent(expr, rng=np.random.default_rng(0), num_rewrites=4)
    print("expr:", expr, "| aug:", aug, "| equivalent:", equivalent(expr, aug))


if __name__ == "__main__":
    main()
