"""Developer smoke test for the downstream task runners (not part of the test suite)."""

import time

from repro.core import NetTAGConfig, NetTAGPipeline
from repro.tasks import (
    build_aig_dataset,
    build_sequential_dataset,
    build_task1_dataset,
    build_task4_dataset,
    evaluate_aig_methods,
    run_task1,
    run_task2,
    run_task3,
    run_task4,
)


def show(label, start):
    print(f"[{label}] {time.perf_counter() - start:.1f}s")
    return time.perf_counter()


def main() -> None:
    t = time.perf_counter()
    pipeline = NetTAGPipeline(NetTAGConfig.fast())
    pipeline.pretrain(designs_per_suite=1)
    t = show("pretrain", t)

    task1 = build_task1_dataset(num_designs=3)
    results1 = run_task1(pipeline.model, task1, baseline_epochs=15)
    for method, rows in results1.items():
        print(" Task1", method, rows[-1].as_dict())
    t = show("task1", t)

    seq = build_sequential_dataset(design_names=("itc1", "itc2", "chipyard1", "vex1", "opencores1"))
    results2 = run_task2(pipeline.model, seq, baseline_epochs=15)
    for method, rows in results2.items():
        print(" Task2", method, rows[-1].as_dict())
    t = show("task2", t)

    results3 = run_task3(pipeline.model, seq, baseline_epochs=15)
    for method, rows in results3.items():
        print(" Task3", method, rows[-1].as_dict())
    t = show("task3", t)

    task4 = build_task4_dataset(num_designs=10)
    results4 = run_task4(pipeline.model, task4, baseline_epochs=20)
    for row in results4:
        print(" Task4", row.as_dict())
    t = show("task4", t)

    aig = build_aig_dataset(task1)
    fig5 = evaluate_aig_methods(pipeline.model, aig)
    for method, row in fig5.items():
        print(" Fig5", method, row.as_dict())
    show("fig5", t)


if __name__ == "__main__":
    main()
