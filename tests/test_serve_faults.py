"""Fault injection for the index's crash-safety story (ISSUE 9 satellite).

The contract: **a readable index always survives, at either the old or the
new generation — never a torn one.**  Three adversaries attack it here:

* ``os.replace`` failing at *every* rename an operation performs (disk
  full mid-compact, mid-save, mid-hot-swap) — each failure point is
  exercised individually and the on-disk index must reopen with exactly
  the pre-operation live content.
* ``Path.unlink`` failing after compact's atomic manifest switch — the
  index must reopen at the *new* generation; the orphaned payload files
  must confuse neither ``open`` nor subsequent ingest.
* a writer process SIGKILL'd mid-ingest loop — whatever instant the kill
  lands, ``EmbeddingIndex.open`` succeeds and every surviving row's
  payload is loadable.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.netlist import extract_register_cones
from repro.rtl import make_controller
from repro.serve import EmbeddingIndex, NetTAGService, exact_topk
from repro.synth import synthesize

DIM = 12


def _live_content(index: EmbeddingIndex) -> dict:
    """Map of live ``(key, kind)`` → vector, via the search read surface."""
    live = index.live_row_map()
    segments = list(index.iter_segments())
    content = {}
    for (key, kind), (segment, row) in live.items():
        content[(key, kind)] = np.asarray(segments[segment][2][row], dtype=np.float64)
    return content


def _assert_same_content(actual: dict, expected: dict) -> None:
    assert actual.keys() == expected.keys()
    for pair, vector in expected.items():
        np.testing.assert_allclose(actual[pair], vector, rtol=0, atol=1e-12)


def _build_index(directory, n=40, removed=6, seed=0) -> EmbeddingIndex:
    rng = np.random.default_rng(seed)
    index = EmbeddingIndex.create(directory, dim=DIM, shard_size=8, overwrite=True)
    index.add([f"k{i}" for i in range(n)], rng.normal(size=(n, DIM)), kinds="cone")
    index.save()
    index.remove([f"k{i}" for i in range(removed)])
    index.save()
    return index


class _FlakyReplace:
    """``os.replace`` that raises ENOSPC on its ``fail_at``-th call."""

    def __init__(self, fail_at: int):
        self.fail_at = fail_at
        self.calls = 0
        self.real = os.replace

    def __call__(self, src, dst):
        self.calls += 1
        if self.calls == self.fail_at:
            raise OSError(28, "No space left on device (injected)")
        return self.real(src, dst)


def _count_replaces(operation, monkeypatch) -> int:
    """How many renames ``operation`` performs when nothing fails."""
    flaky = _FlakyReplace(fail_at=0)  # never fires
    monkeypatch.setattr(os, "replace", flaky)
    try:
        operation()
    finally:
        monkeypatch.setattr(os, "replace", flaky.real)
    return flaky.calls


class TestCompactRenameFailures:
    def test_every_rename_failure_point_leaves_old_generation_readable(
        self, tmp_path, monkeypatch
    ):
        probe = _build_index(tmp_path / "probe")
        total = _count_replaces(probe.compact, monkeypatch)
        assert total >= 3, "compact should rename several payloads + the manifest"

        for fail_at in range(1, total + 1):
            directory = tmp_path / f"fail{fail_at}"
            index = _build_index(directory)
            expected = _live_content(index)
            flaky = _FlakyReplace(fail_at)
            monkeypatch.setattr(os, "replace", flaky)
            try:
                with pytest.raises(OSError, match="injected"):
                    index.compact()
            finally:
                monkeypatch.setattr(os, "replace", flaky.real)
            reopened = EmbeddingIndex.open(directory)
            _assert_same_content(_live_content(reopened), expected)

    def test_failed_compact_does_not_poison_later_ingest(self, tmp_path, monkeypatch):
        index = _build_index(tmp_path / "ix")
        flaky = _FlakyReplace(fail_at=2)
        monkeypatch.setattr(os, "replace", flaky)
        try:
            with pytest.raises(OSError, match="injected"):
                index.compact()
        finally:
            monkeypatch.setattr(os, "replace", flaky.real)
        # The same in-memory index keeps working: ingest, save, compact.
        reopened = EmbeddingIndex.open(tmp_path / "ix")
        rng = np.random.default_rng(9)
        reopened.add(["fresh"], rng.normal(size=(1, DIM)), kinds="cone")
        reopened.save()
        reopened.compact()
        final = EmbeddingIndex.open(tmp_path / "ix")
        assert ("fresh", "cone") in _live_content(final)
        assert ("k39", "cone") in _live_content(final)


class TestSaveRenameFailures:
    def test_interrupted_save_leaves_previously_saved_rows(self, tmp_path, monkeypatch):
        directory = tmp_path / "ix"
        index = _build_index(directory, n=24, removed=0)
        saved = _live_content(EmbeddingIndex.open(directory))
        rng = np.random.default_rng(3)
        index.add(
            [f"extra{i}" for i in range(20)], rng.normal(size=(20, DIM)), kinds="cone"
        )
        for fail_at in (1, 2, 3):
            flaky = _FlakyReplace(fail_at)
            monkeypatch.setattr(os, "replace", flaky)
            try:
                with pytest.raises(OSError, match="injected"):
                    index.save()
            finally:
                monkeypatch.setattr(os, "replace", flaky.real)
            reopened = EmbeddingIndex.open(directory)
            content = _live_content(reopened)
            # Old rows are never lost; the manifest only ever references
            # fully-written shards, so whatever subset of the new rows is
            # visible, each one's payload loads.
            for pair, vector in saved.items():
                np.testing.assert_allclose(content[pair], vector, atol=1e-12)
        # Once renames work again the interrupted save completes fully.
        index.save()
        content = _live_content(EmbeddingIndex.open(directory))
        assert ("extra19", "cone") in content


class TestUnlinkFailures:
    def test_unlink_failure_after_manifest_switch_keeps_new_generation(
        self, tmp_path, monkeypatch
    ):
        directory = tmp_path / "ix"
        index = _build_index(directory)
        expected = _live_content(index)
        real_unlink = pathlib.Path.unlink

        def flaky_unlink(self, missing_ok=False):
            if self.suffix == ".npy":
                raise OSError(1, "Operation not permitted (injected)")
            return real_unlink(self, missing_ok=missing_ok)

        monkeypatch.setattr(pathlib.Path, "unlink", flaky_unlink)
        try:
            with pytest.raises(OSError, match="injected"):
                index.compact()
        finally:
            monkeypatch.setattr(pathlib.Path, "unlink", real_unlink)
        # The manifest switched before the unlinks: the new generation is
        # what reopens, orphaned payloads notwithstanding.
        reopened = EmbeddingIndex.open(directory)
        _assert_same_content(_live_content(reopened), expected)
        assert not reopened.is_tombstoned("k0"), "compacted manifest keeps no tombstones"
        # Orphans do not collide with future shard ids.
        rng = np.random.default_rng(4)
        reopened.add(
            [f"post{i}" for i in range(12)], rng.normal(size=(12, DIM)), kinds="cone"
        )
        reopened.save()
        final = _live_content(EmbeddingIndex.open(directory))
        _assert_same_content(
            {p: v for p, v in final.items() if not p[0].startswith("post")}, expected
        )


class TestServiceLevelFaults:
    @pytest.fixture()
    def service(self, small_model, tmp_path):
        net = synthesize(make_controller("flt", seed=51, num_states=4, data_width=4)).netlist
        index = NetTAGService.create_index(small_model, tmp_path / "svc", shard_size=8)
        with NetTAGService(small_model, index=index, max_latency_ms=2.0) as svc:
            svc.add_netlists([net])
            svc.index.remove(svc.index.keys()[:2])
            svc.index.save()
            yield svc

    def test_service_survives_rename_failure_mid_compact(
        self, service, monkeypatch, small_model
    ):
        expected = _live_content(service.index)
        cone = extract_register_cones(
            synthesize(make_controller("flt", seed=51, num_states=4, data_width=4)).netlist
        )[0]
        before = service.query_cone(cone, k=2)
        flaky = _FlakyReplace(fail_at=2)
        monkeypatch.setattr(os, "replace", flaky)
        try:
            with pytest.raises(OSError, match="injected"):
                service.compact()
        finally:
            monkeypatch.setattr(os, "replace", flaky.real)
        # Queries still serve, on a consistent snapshot.
        after = service.query_cone(cone, k=2)
        assert [h.key for h in after] == [h.key for h in before]
        reopened = EmbeddingIndex.open(service.index.directory)
        _assert_same_content(_live_content(reopened), expected)

    def test_service_survives_rename_failure_mid_model_hot_swap(
        self, service, monkeypatch, small_model
    ):
        from repro.core import NetTAG

        expected = _live_content(EmbeddingIndex.open(service.index.directory))
        new_model = NetTAG(small_model.config, rng=np.random.default_rng(99))
        flaky = _FlakyReplace(fail_at=1)
        monkeypatch.setattr(os, "replace", flaky)
        try:
            with pytest.raises(OSError, match="injected"):
                service.swap_model(new_model)
        finally:
            monkeypatch.setattr(os, "replace", flaky.real)
        # On-disk index still reopens at the pre-swap generation.
        reopened = EmbeddingIndex.open(service.index.directory)
        _assert_same_content(_live_content(reopened), expected)
        # The service keeps serving embedding queries.
        rng = np.random.default_rng(1)
        probe = rng.normal(size=small_model.index_dim)
        assert service.query_embedding(probe, k=1)


_WRITER_SCRIPT = """
import sys
import numpy as np
from repro.serve import EmbeddingIndex

index = EmbeddingIndex.open(sys.argv[1])
rng = np.random.default_rng(1)
print("ready", flush=True)
batch = 0
while True:
    index.add(
        [f"w{batch}_{j}" for j in range(4)],
        rng.normal(size=(4, index.dim)),
        kinds="cone",
    )
    index.save()
    batch += 1
"""


class TestKilledWriter:
    @pytest.mark.parametrize("delay", [0.02, 0.1, 0.3])
    def test_sigkilled_writer_leaves_readable_index(self, tmp_path, delay):
        directory = tmp_path / f"kill-{delay}"
        _build_index(directory, n=16, removed=0)
        baseline = _live_content(EmbeddingIndex.open(directory))

        env = dict(os.environ)
        root = pathlib.Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, str(directory)],
            stdout=subprocess.PIPE,
            env=env,
        )
        try:
            assert proc.stdout.readline().strip() == b"ready"
            time.sleep(delay)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        reopened = EmbeddingIndex.open(directory)
        content = _live_content(reopened)
        # Pre-existing rows always survive, whatever instant the kill landed.
        for pair, vector in baseline.items():
            np.testing.assert_allclose(content[pair], vector, atol=1e-12)
        # Every row the manifest references is actually loadable + searchable.
        for keys, kinds, matrix, norms in reopened.iter_segments():
            assert np.isfinite(np.asarray(matrix, dtype=np.float64)).all()
        some_key, _ = next(iter(baseline))
        query = baseline[(some_key, "cone")]
        hits = exact_topk(reopened, query[np.newaxis, :], k=1)
        assert hits[0][0].key == some_key


class TestRetirementCallbackFaults:
    """A raising retirement callback is counted and warned about — it must
    neither turn the releasing reader's successful query into an error nor
    strand the sibling callbacks queued behind it (ISSUE 10 bugfix)."""

    @staticmethod
    def _manager():
        import itertools

        from repro.serve import ReadSnapshot, SnapshotManager

        generations = itertools.count()
        return SnapshotManager(
            lambda: ReadSnapshot(
                dim=2, generation=next(generations), segments=[], metadata=[],
                live_map={},
            )
        )

    def test_raising_retirement_leaves_releasing_reader_unharmed(self):
        manager = self._manager()
        manager.refresh()
        pin = manager.pin()

        def bad() -> None:
            raise OSError("injected retirement failure")

        manager.refresh(retire=bad)
        # The last reader of the old snapshot triggers the deferred
        # retirement on release; the injected failure must be swallowed
        # (warned + counted), not raised into the reader.
        with pytest.warns(RuntimeWarning, match="retirement callback failed"):
            pin.release()
        stats = manager.stats()
        assert stats["retirements_failed"] == 1
        assert stats["retirements_run"] == 0
        assert stats["retirements_pending"] == 0

    def test_sibling_callbacks_still_run_after_one_raises(self):
        manager = self._manager()
        manager.refresh()
        pin_old = manager.pin()

        def bad() -> None:
            raise OSError("injected retirement failure")

        manager.refresh(retire=bad)
        pin_mid = manager.pin()
        ran = []
        manager.refresh(retire=lambda: ran.append("good"))
        # Both snapshots still pinned -> both retirements deferred; shutdown
        # drains them through one callback pass where bad precedes good.
        with pytest.warns(RuntimeWarning, match="retirement callback failed"):
            manager.shutdown()
        assert ran == ["good"]
        stats = manager.stats()
        assert stats["retirements_failed"] == 1
        assert stats["retirements_run"] == 1
        pin_old.release()
        pin_mid.release()

    def test_service_compact_survives_unlink_failure_on_retirement(
        self, tmp_path, monkeypatch
    ):
        """Integration: compact's stale-payload unlink raising on a reader's
        release leaves the service serving and the failure visible in stats."""
        index = _build_index(tmp_path / "ix")
        expected = _live_content(index)
        from repro.serve import SnapshotManager

        snapshots = SnapshotManager(index.snapshot)
        snapshots.refresh()
        pin = snapshots.pin()  # a reader mid-query across the compact

        result = index.compact()
        assert result["tombstones_dropped"] > 0

        def failing_unlink() -> None:
            raise OSError("injected unlink failure")

        snapshots.refresh(retire=failing_unlink)
        with pytest.warns(RuntimeWarning, match="retirement callback failed"):
            pin.release()
        # New readers keep getting correct, complete answers.
        fresh = snapshots.pin()
        try:
            some_vec = next(iter(expected.values()))
            hits = exact_topk(fresh.snapshot, some_vec[np.newaxis, :], k=1)
            assert hits[0]
        finally:
            fresh.release()
        assert snapshots.stats()["retirements_failed"] == 1
