"""Deadline/backpressure unit tests for the asyncio front end.

The contract under test (ISSUE 9 satellite): a slow encoder produces
*timeouts*, never hangs; an over-limit queue rejects with a retry-after
hint instead of buffering; a graceful drain completes in-flight requests
and refuses new ones.  Everything runs against a real
:class:`NetTAGService` + scheduler — the stalls are injected by wrapping
the scheduler's batch function, exactly where a production stall appears.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.netlist import extract_register_cones
from repro.rtl import make_controller
from repro.serve import (
    AdmissionError,
    AsyncFrontend,
    DeadlineExceeded,
    FrontendClosed,
    NetTAGService,
)
from repro.synth import synthesize


@pytest.fixture(scope="module")
def corpus():
    net_a = synthesize(make_controller("fe_a", seed=31, num_states=4, data_width=4)).netlist
    net_b = synthesize(make_controller("fe_b", seed=32, num_states=5, data_width=3)).netlist
    return [net_a, net_b]


@pytest.fixture(scope="module")
def cones(corpus):
    return extract_register_cones(corpus[0])


@pytest.fixture()
def service(small_model, corpus, tmp_path):
    index = NetTAGService.create_index(small_model, tmp_path / "fe-index", shard_size=16)
    with NetTAGService(small_model, index=index, max_latency_ms=2.0) as svc:
        svc.add_netlists(corpus)
        yield svc


def run(coro):
    return asyncio.run(coro)


class _Stall:
    """Wraps the scheduler's batch function with a controllable delay."""

    def __init__(self, scheduler, seconds):
        self.original = scheduler.batch_fn
        self.seconds = seconds
        self.scheduler = scheduler
        scheduler.batch_fn = self

    def __call__(self, items):
        time.sleep(self.seconds)
        return self.original(items)

    def undo(self):
        self.scheduler.batch_fn = self.original


class TestHappyPath:
    def test_query_encode_ingest_roundtrip(self, service, corpus, cones):
        async def main():
            async with AsyncFrontend(service) as frontend:
                hits = await frontend.query_cone(cones[0], k=3)
                assert hits and hits[0].score > 0.99
                vector = await frontend.encode_cone(cones[0])
                direct = await frontend.query_embedding(vector, k=3, kind="cone")
                assert {h.key for h in direct} == {h.key for h in hits}
                added = await frontend.add_netlists(corpus)
                assert added > 0
                stats = frontend.stats()
                assert stats["kinds"]["query"]["completed"] == 2
                assert stats["kinds"]["encode"]["completed"] == 1
                assert stats["kinds"]["ingest"]["completed"] == 1

        run(main())

    def test_concurrent_fanout_all_resolve(self, service, cones):
        async def main():
            requests = (cones * 3)[:24]
            async with AsyncFrontend(service, limits={"query": len(requests)}) as frontend:
                rows = await asyncio.gather(
                    *[frontend.query_cone(cone, k=2) for cone in requests]
                )
                assert all(rows)
                stats = frontend.stats()["kinds"]["query"]
                assert stats["completed"] == len(requests)
                assert stats["rejected"] == 0 and stats["inflight"] == 0

        run(main())


class TestDeadlines:
    def test_slow_encoder_times_out_instead_of_hanging(self, service, cones):
        stall = _Stall(service._scheduler, 1.0)
        try:
            async def main():
                async with AsyncFrontend(service, deadline=0.1) as frontend:
                    start = time.monotonic()
                    with pytest.raises(DeadlineExceeded):
                        await frontend.query_cone(cones[0], k=2)
                    assert time.monotonic() - start < 0.8, "timeout fired late"
                    stats = frontend.stats()["kinds"]["query"]
                    assert stats["timeouts"] == 1 and stats["inflight"] == 0

            run(main())
        finally:
            stall.undo()

    def test_per_request_deadline_overrides_default(self, service, cones):
        stall = _Stall(service._scheduler, 0.4)
        try:
            async def main():
                async with AsyncFrontend(service, deadline=30.0) as frontend:
                    with pytest.raises(DeadlineExceeded):
                        await frontend.query_cone(cones[0], k=2, deadline=0.05)
                    # The generous default still succeeds.
                    hits = await frontend.query_cone(cones[0], k=2)
                    assert hits

            run(main())
        finally:
            stall.undo()

    def test_timed_out_request_releases_its_slot(self, service, cones):
        stall = _Stall(service._scheduler, 0.5)
        try:
            async def main():
                async with AsyncFrontend(service, limits={"query": 1}) as frontend:
                    with pytest.raises(DeadlineExceeded):
                        await frontend.query_cone(cones[0], k=2, deadline=0.05)
                    # The slot freed by the timeout admits the next request.
                    hits = await frontend.query_cone(cones[0], k=2)
                    assert hits

            run(main())
        finally:
            stall.undo()


class TestBackpressure:
    def test_over_limit_queue_rejects_with_retry_after(self, service, cones):
        stall = _Stall(service._scheduler, 0.5)
        try:
            async def main():
                async with AsyncFrontend(
                    service, limits={"query": 2}, retry_after=0.125
                ) as frontend:
                    first = asyncio.ensure_future(frontend.query_cone(cones[0], k=2))
                    second = asyncio.ensure_future(frontend.query_cone(cones[1], k=2))
                    await asyncio.sleep(0.05)  # both admitted, still stalled
                    with pytest.raises(AdmissionError) as excinfo:
                        await frontend.query_cone(cones[0], k=2)
                    error = excinfo.value
                    assert error.kind == "query"
                    assert error.limit == 2 and error.depth == 2
                    assert error.retry_after == 0.125
                    assert (await asyncio.gather(first, second))
                    stats = frontend.stats()["kinds"]["query"]
                    assert stats["rejected"] == 1 and stats["completed"] == 2

            run(main())
        finally:
            stall.undo()

    def test_limits_are_per_kind(self, service, cones):
        stall = _Stall(service._scheduler, 0.4)
        try:
            async def main():
                async with AsyncFrontend(service, limits={"query": 1}) as frontend:
                    pending = asyncio.ensure_future(frontend.query_cone(cones[0], k=2))
                    await asyncio.sleep(0.05)
                    # The query queue is full; the encode queue still admits.
                    vector = await frontend.encode_cone(cones[0])
                    assert vector.shape
                    await pending

            run(main())
        finally:
            stall.undo()

    def test_unknown_kind_and_bad_limits_rejected(self, service):
        with pytest.raises(ValueError):
            AsyncFrontend(service, limits={"nonsense": 3})
        with pytest.raises(ValueError):
            AsyncFrontend(service, limits={"query": 0})
        with pytest.raises(ValueError):
            AsyncFrontend(service, retry_after=0.0)
        with pytest.raises(ValueError):
            AsyncFrontend(service, deadline=-1.0)


class TestGracefulDrain:
    def test_drain_completes_inflight_and_refuses_new(self, service, cones):
        stall = _Stall(service._scheduler, 0.2)
        try:
            async def main():
                frontend = AsyncFrontend(service)
                inflight = asyncio.ensure_future(frontend.query_cone(cones[0], k=2))
                await asyncio.sleep(0.05)
                drain = asyncio.ensure_future(frontend.drain())
                await asyncio.sleep(0)  # drain() flips closed before waiting
                with pytest.raises(FrontendClosed):
                    await frontend.query_cone(cones[1], k=2)
                assert await inflight, "in-flight request must complete"
                await drain
                assert frontend.closed
                await frontend.aclose()

            run(main())
        finally:
            stall.undo()

    def test_drain_idempotent_and_immediate_when_idle(self, service):
        async def main():
            frontend = AsyncFrontend(service)
            await asyncio.wait_for(frontend.drain(), timeout=1.0)
            await asyncio.wait_for(frontend.aclose(), timeout=1.0)

        run(main())

    def test_stats_conservation(self, service, cones):
        """admitted == completed + failed + timeouts + rejected-not-counted."""
        stall = _Stall(service._scheduler, 0.3)
        try:
            async def main():
                async with AsyncFrontend(
                    service, limits={"query": 2}, deadline=5.0
                ) as frontend:
                    tasks = [
                        asyncio.ensure_future(frontend.query_cone(cones[0], k=2)),
                        asyncio.ensure_future(frontend.query_cone(cones[1], k=2)),
                        asyncio.ensure_future(
                            frontend.query_cone(cones[0], k=2, deadline=0.05)
                        ),
                    ]
                    results = await asyncio.gather(*tasks, return_exceptions=True)
                    kinds = frontend.stats()["kinds"]["query"]
                    rejected_or_timed = sum(
                        isinstance(r, (AdmissionError, DeadlineExceeded))
                        for r in results
                    )
                    assert rejected_or_timed >= 1
                    assert (
                        kinds["admitted"]
                        == kinds["completed"] + kinds["failed"] + kinds["timeouts"]
                    )
                    assert kinds["inflight"] == 0

            run(main())
        finally:
            stall.undo()


class TestEmbeddingVectorQueries:
    def test_query_embedding_runs_off_loop(self, service, cones):
        async def main():
            async with AsyncFrontend(service) as frontend:
                vector = np.asarray(await frontend.encode_cone(cones[0]))
                hits = await frontend.query_embedding(
                    vector, k=2, kind="cone", approximate=False
                )
                assert hits and hits[0].score > 0.99

        run(main())
