"""Tests for the physical-design substrate: placement, parasitics, optimisation, layout graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.physical import (
    LAYOUT_FEATURES,
    build_layout_graph,
    compute_net_wirelengths,
    extract_parasitics,
    physically_optimize,
    place,
)


class TestPlacement:
    def test_every_gate_gets_coordinates_inside_die(self, seq_netlist):
        placement = place(seq_netlist)
        assert set(placement.coordinates) == set(seq_netlist.gates)
        for x, y in placement.coordinates.values():
            assert 0.0 <= x <= placement.die_width
            assert 0.0 <= y <= placement.die_height

    def test_die_area_respects_utilization(self, comb_netlist):
        placement = place(comb_netlist, target_utilization=0.5)
        die_area = placement.die_width * placement.die_height
        assert die_area * 0.5 >= comb_netlist.total_area() * 0.99

    def test_invalid_utilization_rejected(self, comb_netlist):
        with pytest.raises(ValueError):
            place(comb_netlist, target_utilization=0.0)
        with pytest.raises(ValueError):
            place(comb_netlist, target_utilization=1.5)

    def test_placement_is_deterministic_for_fixed_seed(self, comb_netlist):
        a = place(comb_netlist, seed=3)
        b = place(comb_netlist, seed=3)
        assert a.coordinates == b.coordinates

    def test_net_wirelengths_nonnegative_and_cover_multi_pin_nets(self, comb_netlist):
        placement = place(comb_netlist)
        wirelengths = compute_net_wirelengths(comb_netlist, placement)
        assert all(value >= 0.0 for value in wirelengths.values())
        assert placement.total_wirelength == pytest.approx(sum(placement.net_wirelength.values()))

    def test_location_lookup(self, comb_netlist):
        placement = place(comb_netlist)
        name = next(iter(comb_netlist.gates))
        assert placement.location(name) == placement.coordinates[name]


class TestParasitics:
    def test_every_driven_net_has_parasitics(self, comb_netlist):
        placement = place(comb_netlist)
        spef = extract_parasitics(comb_netlist, placement)
        for gate in comb_netlist.gates.values():
            assert gate.output in spef

    def test_parasitic_values_physical(self, comb_netlist):
        placement = place(comb_netlist)
        spef = extract_parasitics(comb_netlist, placement)
        for parasitic in spef.nets.values():
            assert parasitic.capacitance >= parasitic.wire_capacitance >= 0.0
            assert parasitic.resistance >= 0.0
            assert parasitic.elmore_delay >= 0.0

    def test_longer_nets_have_more_wire_capacitance(self, comb_netlist):
        placement = place(comb_netlist)
        spef = extract_parasitics(comb_netlist, placement)
        nets = sorted(spef.nets.values(), key=lambda p: p.wirelength)
        if len(nets) >= 2 and nets[-1].wirelength > nets[0].wirelength:
            assert nets[-1].wire_capacitance >= nets[0].wire_capacitance

    def test_total_wire_capacitance_is_sum(self, comb_netlist):
        placement = place(comb_netlist)
        spef = extract_parasitics(comb_netlist, placement)
        assert spef.total_wire_capacitance == pytest.approx(
            sum(p.wire_capacitance for p in spef.nets.values())
        )

    def test_spef_write(self, tiny_netlist, tmp_path):
        placement = place(tiny_netlist)
        spef = extract_parasitics(tiny_netlist, placement)
        path = spef.write(tmp_path / "tiny.spef")
        text = path.read_text()
        assert "*DESIGN" in text
        assert text.count("*D_NET") == len(spef.nets)


class TestPhysicalOptimization:
    def test_optimized_netlist_is_valid_copy(self, seq_netlist):
        placement = place(seq_netlist)
        optimized, report = physically_optimize(seq_netlist, placement)
        assert optimized is not seq_netlist
        optimized.validate()
        assert report.total_changes == report.upsized + report.downsized + report.buffers_inserted

    def test_original_netlist_untouched(self, seq_netlist):
        before = {name: gate.cell_name for name, gate in seq_netlist.gates.items()}
        placement = place(seq_netlist)
        physically_optimize(seq_netlist, placement)
        after = {name: gate.cell_name for name, gate in seq_netlist.gates.items()}
        assert before == after

    def test_buffering_long_nets_adds_gates(self, comb_netlist):
        placement = place(comb_netlist)
        optimized, report = physically_optimize(
            comb_netlist, placement, wirelength_threshold=0.5, fanout_threshold=2
        )
        assert optimized.num_gates >= comb_netlist.num_gates
        if report.buffers_inserted:
            assert optimized.num_gates == comb_netlist.num_gates + report.buffers_inserted

    def test_upsizing_increases_area(self, comb_netlist):
        placement = place(comb_netlist)
        optimized, report = physically_optimize(
            comb_netlist, placement, fanout_threshold=1, downsize_fraction=0.0
        )
        if report.upsized:
            assert optimized.total_area() > comb_netlist.total_area()

    def test_preserves_primary_ports(self, seq_netlist):
        placement = place(seq_netlist)
        optimized, _ = physically_optimize(seq_netlist, placement)
        assert set(optimized.primary_outputs) == set(seq_netlist.primary_outputs)
        assert set(optimized.primary_inputs) == set(seq_netlist.primary_inputs)

    def test_register_count_is_preserved(self, seq_netlist):
        placement = place(seq_netlist)
        optimized, _ = physically_optimize(seq_netlist, placement)
        assert len(optimized.registers) == len(seq_netlist.registers)


class TestLayoutGraph:
    def test_feature_matrix_shape(self, seq_netlist):
        layout = build_layout_graph(seq_netlist)
        assert layout.num_nodes == seq_netlist.num_gates
        assert layout.node_features.shape == (layout.num_nodes, len(LAYOUT_FEATURES))

    def test_node_order_matches_graph_view(self, comb_netlist):
        layout = build_layout_graph(comb_netlist)
        assert layout.node_names == layout.graph.node_names

    def test_normalised_features_finite(self, comb_netlist):
        layout = build_layout_graph(comb_netlist)
        matrix = layout.feature_matrix(normalise=True)
        assert np.all(np.isfinite(matrix))

    def test_accepts_precomputed_placement_and_spef(self, tiny_netlist):
        placement = place(tiny_netlist)
        spef = extract_parasitics(tiny_netlist, placement)
        layout = build_layout_graph(tiny_netlist, placement=placement, spef=spef)
        assert layout.num_nodes == tiny_netlist.num_gates
