"""Tests for the downstream task datasets, baselines and runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tasks import (
    REGISTER_ROLE_INDEX,
    TASK1_CLASSES,
    TASK1_CLASS_INDEX,
    anonymize_gate_names,
    build_aig_dataset,
    build_sequential_dataset,
    build_task1_dataset,
    build_task4_dataset,
    evaluate_aig_methods,
    evaluate_task4,
    gnnre_baseline,
    reignn_baseline,
    rows_by_method,
    run_task1,
    run_task2,
    run_task3,
    structural_and_physical_features,
    structural_only_features,
    timing_gnn_baseline,
)


@pytest.fixture(scope="module")
def task1_dataset():
    return build_task1_dataset(num_designs=2, seed=7)


@pytest.fixture(scope="module")
def sequential_dataset():
    return build_sequential_dataset(design_names=("itc1", "itc2", "vex1", "opencores1"))


@pytest.fixture(scope="module")
def task4_dataset():
    return build_task4_dataset(num_designs=6)


class TestAnonymisation:
    def test_gate_names_are_neutral(self, task1_dataset):
        for design in task1_dataset.designs:
            for name in design.netlist.gates:
                assert name.startswith("g")
                assert not any(label in name for label in TASK1_CLASSES)

    def test_anonymisation_preserves_structure(self, comb_netlist):
        anonymized, mapping = anonymize_gate_names(comb_netlist)
        assert anonymized.num_gates == comb_netlist.num_gates
        assert set(mapping) == set(comb_netlist.gates)
        assert anonymized.cell_type_counts() == comb_netlist.cell_type_counts()
        anonymized.validate()

    def test_block_attributes_survive_anonymisation(self, task1_dataset):
        design = task1_dataset.designs[0]
        assert design.num_labeled_gates > 0
        for gate, label in design.gate_labels.items():
            assert 0 <= label < len(TASK1_CLASSES)
            block = design.netlist.gates[gate].attributes.get("block")
            assert TASK1_CLASS_INDEX[block] == label


class TestSequentialDataset:
    def test_each_design_has_roles_and_slack(self, sequential_dataset):
        for design in sequential_dataset.designs:
            assert design.register_roles
            assert set(design.register_roles.values()) <= set(REGISTER_ROLE_INDEX.values())
            assert set(design.register_slack) == set(design.register_roles)
            assert design.clock_period > 0

    def test_state_and_data_registers_present_overall(self, sequential_dataset):
        roles = [
            role for design in sequential_dataset.designs for role in design.register_roles.values()
        ]
        assert 0 in roles and 1 in roles

    def test_design_lookup(self, sequential_dataset):
        design = sequential_dataset.design("itc1")
        assert design.name == "itc1"
        with pytest.raises(KeyError):
            sequential_dataset.design("missing")

    def test_unknown_design_name_rejected(self):
        with pytest.raises(ValueError):
            build_sequential_dataset(design_names=("not_a_design",))


class TestTask4Dataset:
    def test_labels_and_estimates_shapes(self, task4_dataset):
        n = len(task4_dataset)
        for metric in ("area", "power"):
            for scenario in ("wo_opt", "w_opt"):
                labels = task4_dataset.labels(metric, scenario)
                assert labels.shape == (n,)
                assert np.all(labels > 0)
            assert task4_dataset.eda_estimates(metric).shape == (n,)

    def test_optimisation_changes_labels(self, task4_dataset):
        wo = task4_dataset.labels("area", "wo_opt")
        w = task4_dataset.labels("area", "w_opt")
        assert not np.allclose(wo, w)

    def test_eda_estimate_correlates_with_truth(self, task4_dataset):
        """The synthesis-tool estimate must be informative but imperfect."""
        estimates = task4_dataset.eda_estimates("area")
        truth = task4_dataset.labels("area", "wo_opt")
        assert np.corrcoef(estimates, truth)[0, 1] > 0.8


class TestBaselines:
    def test_structural_feature_variants(self, comb_netlist):
        struct = structural_only_features(comb_netlist)
        phys = structural_and_physical_features(comb_netlist)
        assert struct.shape[0] == phys.shape[0] == comb_netlist.num_gates
        assert phys.shape[1] > struct.shape[1]

    def test_gnnre_baseline_learns_within_design(self, task1_dataset):
        design = task1_dataset.designs[0]
        labels = design.gate_labels
        baseline = gnnre_baseline(num_classes=len(TASK1_CLASSES), epochs=20, seed=0)
        baseline.fit([(design.netlist, labels)])
        names = sorted(labels)
        predictions = baseline.predict(design.netlist, names)
        truth = np.asarray([labels[n] for n in names])
        assert (predictions == truth).mean() > 0.5  # in-sample fit must beat chance

    def test_reignn_baseline_predicts_register_labels(self, sequential_dataset):
        training = [
            (design.netlist, design.register_roles) for design in sequential_dataset.designs[:-1]
        ]
        baseline = reignn_baseline(epochs=15, seed=0)
        baseline.fit(training)
        held_out = sequential_dataset.designs[-1]
        registers = sorted(held_out.register_roles)
        predictions = baseline.predict(held_out.netlist, registers)
        assert len(predictions) == len(registers)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_timing_gnn_baseline_is_regression(self, sequential_dataset):
        design = sequential_dataset.designs[0]
        baseline = timing_gnn_baseline(epochs=15, seed=0)
        baseline.fit([(design.netlist, design.register_slack)])
        predictions = baseline.predict(design.netlist, sorted(design.register_slack))
        assert predictions.dtype.kind == "f"
        assert np.all(np.isfinite(predictions))


class TestRunners:
    def test_run_task1_rows_and_averages(self, pretrained_pipeline, task1_dataset):
        results = run_task1(pretrained_pipeline.model, task1_dataset, baseline_epochs=10)
        assert set(results) == {"NetTAG", "GNN-RE"}
        for rows in results.values():
            assert len(rows) == len(task1_dataset.designs) + 1
            assert rows[-1].design == "Avg."
            for row in rows:
                assert 0.0 <= row.accuracy <= 1.0
                assert 0.0 <= row.f1 <= 1.0

    def test_run_task2_and_task3(self, pretrained_pipeline, sequential_dataset):
        results2 = run_task2(pretrained_pipeline.model, sequential_dataset, baseline_epochs=10)
        assert set(results2) == {"NetTAG", "ReIGNN"}
        for rows in results2.values():
            assert rows[-1].design == "Avg."
            assert all(0.0 <= row.balanced_accuracy <= 1.0 for row in rows)

        results3 = run_task3(pretrained_pipeline.model, sequential_dataset, baseline_epochs=10)
        assert set(results3) == {"NetTAG", "GNN"}
        for rows in results3.values():
            assert all(np.isfinite(row.mape) for row in rows)
            assert all(-1.0 <= row.r <= 1.0 for row in rows)

    def test_evaluate_task4_rows(self, pretrained_pipeline, task4_dataset):
        rows = evaluate_task4(pretrained_pipeline.model, task4_dataset, baseline_epochs=10)
        methods = {row.method for row in rows}
        assert {"EDA Tool", "GNN", "NetTAG"} <= methods
        combos = {(row.metric, row.scenario, row.method) for row in rows}
        assert len(combos) == len(rows)
        grouped = rows_by_method(rows)
        assert set(grouped) == methods

    def test_aig_dataset_and_methods(self, pretrained_pipeline, task1_dataset):
        aig_dataset = build_aig_dataset(task1_dataset)
        assert len(aig_dataset) == len(task1_dataset.designs)
        for design in aig_dataset:
            types = set(design.netlist.cell_type_counts())
            assert types <= {"AND2", "INV", "CONST0", "CONST1", "DFF", "DFFR", "DFFS"}
        results = evaluate_aig_methods(pretrained_pipeline.model, aig_dataset)
        assert {"FGNN", "DeepGate3", "ExprLLM only", "NetTAG"} <= set(results)
        for row in results.values():
            assert 0.0 <= row.accuracy <= 1.0
