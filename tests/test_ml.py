"""Tests for the classical ML substrate: metrics, trees, boosting, heads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    HeadConfig,
    MLPClassifierHead,
    MLPRegressorHead,
    RidgeClassifierHead,
    RidgeRegressorHead,
    accuracy,
    balanced_accuracy,
    classification_report,
    mape,
    pearson_r,
    precision_recall_f1,
    regression_report,
    sensitivity,
    specificity,
)


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy([0, 1, 1, 0], [0, 1, 0, 0]) == pytest.approx(0.75)
        assert accuracy([1], [1]) == 1.0

    def test_perfect_prediction_metrics(self):
        report = classification_report([0, 1, 2, 1], [0, 1, 2, 1])
        assert report["accuracy"] == 1.0
        assert report["precision"] == 1.0
        assert report["recall"] == 1.0
        assert report["f1"] == 1.0

    def test_macro_averaging_penalises_missing_class(self):
        metrics = precision_recall_f1([0, 0, 1, 1], [0, 0, 0, 0], average="macro")
        assert metrics["recall"] == pytest.approx(0.5)
        assert metrics["precision"] == pytest.approx(0.25)

    def test_micro_averaging_equals_accuracy(self):
        y_true, y_pred = [0, 1, 2, 2], [0, 2, 2, 1]
        metrics = precision_recall_f1(y_true, y_pred, average="micro")
        assert metrics["precision"] == pytest.approx(accuracy(y_true, y_pred))

    def test_sensitivity_specificity_balanced_accuracy(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 0, 1, 0, 1]
        assert sensitivity(y_true, y_pred) == pytest.approx(2 / 3)
        assert specificity(y_true, y_pred) == pytest.approx(1 / 2)
        assert balanced_accuracy(y_true, y_pred) == pytest.approx((2 / 3 + 1 / 2) / 2)

    def test_empty_inputs(self):
        assert precision_recall_f1([], [])["f1"] == 0.0


class TestRegressionMetrics:
    def test_pearson_r_perfect_and_inverse(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert pearson_r(x, x) == pytest.approx(1.0)
        assert pearson_r(x, [-v for v in x]) == pytest.approx(-1.0)

    def test_pearson_r_constant_input_is_zero(self):
        assert pearson_r([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_mape_basic(self):
        assert mape([100.0, 200.0], [110.0, 180.0]) == pytest.approx(10.0)

    def test_mape_protected_against_zero_targets(self):
        value = mape([0.0, 100.0], [1.0, 100.0])
        assert np.isfinite(value)

    def test_regression_report_keys(self):
        report = regression_report([1.0, 2.0, 3.0], [1.1, 2.1, 2.9])
        assert set(report) == {"r", "mape"}
        assert report["r"] > 0.99


class TestTreesAndBoosting:
    def test_decision_tree_fits_piecewise_constant(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(-1, 1, size=(200, 2))
        targets = np.where(features[:, 0] > 0.0, 2.0, -2.0)
        tree = DecisionTreeRegressor(max_depth=3).fit(features, targets)
        predictions = tree.predict(features)
        assert np.mean(np.abs(predictions - targets)) < 0.2
        assert tree.depth() >= 1

    def test_gbdt_regressor_learns_nonlinear_function(self):
        rng = np.random.default_rng(1)
        features = rng.uniform(-2, 2, size=(300, 3))
        targets = features[:, 0] ** 2 + 0.5 * features[:, 1]
        model = GradientBoostingRegressor(seed=0).fit(features, targets)
        predictions = model.predict(features)
        assert pearson_r(targets, predictions) > 0.9
        assert model.num_fitted_trees > 0

    def test_gbdt_classifier_separates_clusters(self):
        rng = np.random.default_rng(2)
        a = rng.normal(loc=-2.0, size=(60, 4))
        b = rng.normal(loc=+2.0, size=(60, 4))
        features = np.vstack([a, b])
        labels = np.array([0] * 60 + [1] * 60)
        model = GradientBoostingClassifier(seed=0).fit(features, labels)
        assert accuracy(labels, model.predict(features)) > 0.95
        proba = model.predict_proba(features)
        assert proba.shape[0] == 120
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_gbdt_classifier_multiclass(self):
        rng = np.random.default_rng(3)
        centers = [(-3, 0), (3, 0), (0, 4)]
        features = np.vstack([rng.normal(loc=c, scale=0.5, size=(40, 2)) for c in centers])
        labels = np.repeat([0, 1, 2], 40)
        model = GradientBoostingClassifier(seed=0).fit(features, labels)
        assert accuracy(labels, model.predict(features)) > 0.9


class TestHeads:
    def make_classification_data(self, seed=0, dim=8, per_class=40):
        rng = np.random.default_rng(seed)
        a = rng.normal(loc=-1.5, size=(per_class, dim))
        b = rng.normal(loc=+1.5, size=(per_class, dim))
        return np.vstack([a, b]), np.array([0] * per_class + [1] * per_class)

    def test_mlp_classifier_head(self):
        features, labels = self.make_classification_data()
        head = MLPClassifierHead(HeadConfig(num_epochs=40)).fit(features, labels)
        assert accuracy(labels, head.predict(features)) > 0.9
        proba = head.predict_proba(features)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-5)

    def test_mlp_classifier_preserves_original_label_values(self):
        features, labels = self.make_classification_data()
        shifted = labels + 5  # classes {5, 6}
        head = MLPClassifierHead(HeadConfig(num_epochs=30)).fit(features, shifted)
        assert set(np.unique(head.predict(features))) <= {5, 6}

    def test_mlp_regressor_head(self):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(150, 6))
        targets = 2.0 * features[:, 0] - features[:, 1] + 0.3
        head = MLPRegressorHead(HeadConfig(num_epochs=80)).fit(features, targets)
        assert pearson_r(targets, head.predict(features)) > 0.9

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifierHead().fit(np.zeros((0, 4)), [])

    def test_ridge_regressor_recovers_linear_model(self):
        rng = np.random.default_rng(5)
        features = rng.normal(size=(100, 5))
        targets = features @ np.array([1.0, -2.0, 0.5, 0.0, 3.0]) + 1.0
        head = RidgeRegressorHead().fit(features, targets)
        assert pearson_r(targets, head.predict(features)) > 0.99

    def test_ridge_classifier(self):
        features, labels = self.make_classification_data(seed=6)
        head = RidgeClassifierHead().fit(features, labels)
        assert accuracy(labels, head.predict(features)) > 0.9

    def test_heads_handle_single_class_training(self):
        features = np.random.default_rng(7).normal(size=(10, 3))
        labels = np.zeros(10, dtype=int)
        head = MLPClassifierHead(HeadConfig(num_epochs=5)).fit(features, labels)
        assert set(np.unique(head.predict(features))) == {0}
