"""Shared fixtures for the unit/integration test suite.

Expensive objects (synthesised netlists, a small NetTAG model, a pre-trained
pipeline) are session-scoped so the several-hundred tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import NANGATE45
from repro.core import NetTAGConfig, NetTAGPipeline
from repro.netlist import Netlist
from repro.rtl import make_controller, make_gnnre_design
from repro.synth import synthesize


@pytest.fixture(scope="session")
def library():
    return NANGATE45


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def fresh_rng():
    return np.random.default_rng(99)


@pytest.fixture(scope="session")
def comb_module():
    """A combinational GNN-RE style RTL module."""
    return make_gnnre_design(1, seed=3)


@pytest.fixture(scope="session")
def comb_netlist(comb_module):
    """Its synthesised netlist (diverse gate types, block labels)."""
    return synthesize(comb_module).netlist


@pytest.fixture(scope="session")
def seq_module():
    """A sequential controller RTL module (FSM + datapath registers)."""
    return make_controller("itc_test", seed=5, num_states=4, data_width=4)


@pytest.fixture(scope="session")
def seq_netlist(seq_module):
    return synthesize(seq_module).netlist


@pytest.fixture(scope="session")
def tiny_netlist(library):
    """A tiny hand-built netlist: out = !((a ^ b) | !b), plus a register."""
    netlist = Netlist("tiny", library=library)
    netlist.add_primary_input("a")
    netlist.add_primary_input("b")
    netlist.add_gate("u_xor", "XOR2_X1", ["a", "b"], "n_xor")
    netlist.add_gate("u_inv", "INV_X1", ["b"], "n_invb")
    netlist.add_gate("u_or", "OR2_X1", ["n_xor", "n_invb"], "n_or")
    netlist.add_gate("u_out", "INV_X1", ["n_or"], "n_out")
    netlist.add_gate("r_state", "DFF_X1", {"D": "n_out"}, "q_state", role="state")
    netlist.add_primary_output("n_out")
    return netlist


@pytest.fixture(scope="session")
def fast_config():
    return NetTAGConfig.fast()


@pytest.fixture(scope="session")
def small_model(fast_config):
    """An untrained (randomly initialised) NetTAG model with tiny dimensions."""
    from repro.core import NetTAG

    return NetTAG(fast_config, rng=np.random.default_rng(7))


@pytest.fixture(scope="session")
def pretrained_pipeline():
    """A NetTAG pipeline pre-trained on a minimal corpus (session-scoped)."""
    config = NetTAGConfig.fast()
    pipeline = NetTAGPipeline(config)
    pipeline.pretrain(designs_per_suite=1)
    return pipeline
