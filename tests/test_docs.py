"""The documentation suite cannot rot: code blocks compile, doctests run.

Mirrors the CI ``docs`` job (``scripts/check_docs.py``) inside the tier-1
suite, and pins the structural expectations of the docs/ suite: the three
documents exist, the README links to them, and each carries at least one
checked code block.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from check_docs import check_document, default_documents, iter_code_blocks  # noqa: E402

DOCUMENTS = default_documents(REPO_ROOT)


def test_docs_suite_exists():
    names = {path.name for path in DOCUMENTS}
    assert {"README.md", "architecture.md", "serving.md", "training.md"} <= names


def test_readme_links_to_docs_suite():
    readme = (REPO_ROOT / "README.md").read_text()
    for name in ("docs/architecture.md", "docs/serving.md", "docs/training.md"):
        assert name in readme, f"README does not link to {name}"


@pytest.mark.parametrize("path", DOCUMENTS, ids=lambda p: p.name)
def test_document_code_blocks_are_valid(path):
    checked, failures = check_document(path)
    assert not failures, "\n".join(failures)
    assert checked >= 1, f"{path.name} has no checked code blocks"


def test_docs_reference_only_existing_documents():
    for path in DOCUMENTS:
        text = path.read_text()
        for other in ("architecture.md", "serving.md", "training.md"):
            if f"]({other})" in text:
                assert (REPO_ROOT / "docs" / other).exists()


def test_block_parser_sees_fences():
    blocks = list(iter_code_blocks(REPO_ROOT / "docs" / "serving.md"))
    languages = {language for language, _, _ in blocks}
    assert "python" in languages and "bash" in languages
