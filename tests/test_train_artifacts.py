"""Tests for the artifact store, stage timers and run manifests (repro.train)."""

from __future__ import annotations

import numpy as np

from repro.train import ArtifactStore, RunManifest, fingerprint


class TestFingerprint:
    def test_stable_across_key_order(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert fingerprint({"seed": 0}) != fingerprint({"seed": 1})


class TestArtifactStore:
    def test_miss_then_hit_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = {"seed": 0, "stage": "demo"}
        calls = []

        def compute():
            calls.append(1)
            return {"matrix": np.arange(6).reshape(2, 3), "names": ["a", "b"]}

        first = store.get_or_compute("demo", key, compute)
        second = store.get_or_compute("demo", key, compute)
        assert len(calls) == 1
        np.testing.assert_array_equal(first["matrix"], second["matrix"])
        assert second["names"] == ["a", "b"]
        assert store.stats() == {"hits": 1, "misses": 1}

    def test_key_change_invalidates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return len(calls)

        store.get_or_compute("demo", {"seed": 0}, compute)
        store.get_or_compute("demo", {"seed": 1}, compute)
        assert len(calls) == 2

    def test_disabled_store_always_computes(self):
        store = ArtifactStore(None)
        calls = []
        for _ in range(2):
            store.get_or_compute("demo", {"k": 1}, lambda: calls.append(1))
        assert len(calls) == 2
        assert not store.enabled

    def test_corrupt_entry_behaves_like_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = {"seed": 0}
        store.get_or_compute("demo", key, lambda: "value")
        for entry in tmp_path.glob("demo-*.pkl"):
            entry.write_bytes(b"not a pickle")
        fresh = ArtifactStore(tmp_path)
        assert fresh.get_or_compute("demo", key, lambda: "recomputed") == "recomputed"

    def test_stage_timings_record_cache_state(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = {"seed": 3}
        with store.stage("demo", key) as run:
            assert not run.cached
            run.save([1, 2, 3])
        with store.stage("demo", key) as run:
            assert run.cached
            assert run.load() == [1, 2, 3]
        assert [t.cached for t in store.timings] == [False, True]
        assert all(t.seconds >= 0.0 for t in store.timings)
        assert "cache hit" in store.timings[1].describe()


class TestAtomicWrites:
    def test_checkpoint_save_leaves_no_temp_files(self, tmp_path):
        from repro import nn

        model = nn.Linear(2, 2, rng=np.random.default_rng(0))
        path = tmp_path / "m.ckpt.npz"
        for _ in range(2):  # second call overwrites atomically
            nn.save_training_checkpoint(path, {"m": model}, state={"step": 1})
        assert path.exists()
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_artifact_save_leaves_no_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("demo", "abc", {"x": 1})
        assert list(tmp_path.glob("*.tmp*")) == []


class TestRunManifest:
    def test_tracks_stage_completion(self, tmp_path):
        manifest = RunManifest(tmp_path, run_key="abc")
        assert not manifest.is_done("expr_pretrain")
        manifest.mark_done("expr_pretrain", steps=6)
        assert manifest.is_done("expr_pretrain")
        assert manifest.stage_record("expr_pretrain")["steps"] == 6

        reloaded = RunManifest(tmp_path, run_key="abc")
        assert reloaded.is_done("expr_pretrain")
        assert list(reloaded.completed_stages()) == ["expr_pretrain"]

    def test_key_mismatch_resets_stale_checkpoints(self, tmp_path):
        manifest = RunManifest(tmp_path, run_key="abc")
        manifest.mark_done("expr_pretrain")
        manifest.checkpoint_path("expr_pretrain").write_bytes(b"stale")
        # Unrelated files in the same directory (e.g. a saved model the user
        # pointed checkpoint_dir at) must survive the reset.
        (tmp_path / "model.npz").write_bytes(b"precious")

        fresh = RunManifest(tmp_path, run_key="different")
        assert not fresh.is_done("expr_pretrain")
        assert not fresh.checkpoint_path("expr_pretrain").exists()
        assert (tmp_path / "model.npz").read_bytes() == b"precious"

    def test_checkpoint_paths_are_stage_scoped(self, tmp_path):
        manifest = RunManifest(tmp_path, run_key="abc")
        paths = {manifest.checkpoint_path(s) for s in ("a", "b")}
        assert len(paths) == 2
        assert all(p.parent == tmp_path for p in paths)
