"""Tests for the benchmark harness plumbing (tables, profiles, dataset statistics)."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    ABLATIONS,
    BenchProfile,
    EDA_ITERATION_FACTOR,
    ResultTable,
    active_profile,
    collect_suite_statistics,
)
from repro.bench.context import PROFILE_ENV_VAR


class TestResultTable:
    @pytest.fixture()
    def table(self):
        table = ResultTable(
            experiment="unit_table",
            title="Unit table",
            columns=["Design", "Acc"],
            notes=["a note"],
        )
        table.add_row(Design="d1", Acc=97.0)
        table.add_row(Design="d2", Acc=83.5)
        return table

    def test_rows_are_recorded(self, table):
        assert len(table.rows) == 2
        assert table.rows[0]["Design"] == "d1"

    def test_to_text_contains_title_and_values(self, table):
        text = table.to_text()
        assert "Unit table" in text
        assert "97.0" in text and "d2" in text

    def test_to_markdown_has_header_and_separator(self, table):
        markdown = table.to_markdown()
        assert "| Design | Acc |" in markdown
        assert "|---|---|" in markdown

    def test_save_writes_markdown_and_json(self, table, tmp_path):
        path = table.save(results_dir=tmp_path)
        assert path.exists()
        json_path = tmp_path / "unit_table.json"
        md_path = tmp_path / "unit_table.md"
        assert json_path.exists() and md_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["title"] == "Unit table"
        assert payload["columns"] == ["Design", "Acc"]
        assert len(payload["rows"]) == 2


class TestProfiles:
    def test_fast_and_paper_profiles(self):
        fast = BenchProfile.fast()
        paper = BenchProfile.paper()
        assert fast.task1_designs <= paper.task1_designs
        assert len(fast.sequential_designs) <= len(paper.sequential_designs)
        assert fast.make_config().model_size == "small"
        assert paper.make_config().model_size == "medium"

    def test_active_profile_respects_environment(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "paper")
        assert active_profile().name == "paper"
        monkeypatch.setenv(PROFILE_ENV_VAR, "fast")
        assert active_profile().name == "fast"
        monkeypatch.delenv(PROFILE_ENV_VAR)
        assert active_profile().name == "fast"

    def test_ablation_list_matches_figure6(self):
        labels = [label for label, _ in ABLATIONS]
        assert labels[0] == "NetTAG (full)"
        assert {"w/o TAG", "w/o obj #1", "w/o obj #2.1", "w/o obj #2.2", "w/o obj #2.3", "w/o align"} <= set(labels)

    def test_eda_iteration_factor_documented_and_positive(self):
        assert EDA_ITERATION_FACTOR > 1


class TestTable2Statistics:
    def test_collect_suite_statistics_structure(self):
        from repro.netlist import aggregate_statistics

        rows = collect_suite_statistics(designs_per_suite=1, seed=0)
        sources = [row.source for row in rows]
        assert sources == ["ITC99", "OpenCores", "Chipyard", "VexRiscv"]
        for row in rows:
            assert row.num_expressions > 0
            assert row.avg_expression_tokens > 0
            assert row.num_cones > 0
            assert row.avg_cone_nodes > 0
        total = aggregate_statistics(rows)
        assert total.num_expressions == sum(r.num_expressions for r in rows)
        assert total.num_cones == sum(r.num_cones for r in rows)
