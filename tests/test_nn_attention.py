"""Tests for multi-head attention and transformer encoder blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestMultiHeadAttention:
    def test_output_shape_batched(self):
        attn = nn.MultiHeadAttention(dim=16, num_heads=4)
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_output_shape_unbatched(self):
        attn = nn.MultiHeadAttention(dim=8, num_heads=2)
        out = attn(Tensor(np.random.default_rng(0).normal(size=(6, 8))))
        assert out.shape == (6, 8)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(dim=10, num_heads=3)

    def test_padding_mask_blocks_padded_positions(self):
        """Changing a masked-out position must not change the output of valid ones."""
        attn = nn.MultiHeadAttention(dim=8, num_heads=2, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[True, True, True, False]])
        out1 = attn(Tensor(x.copy()), key_padding_mask=mask).data
        x_changed = x.copy()
        x_changed[0, 3] += 10.0
        out2 = attn(Tensor(x_changed), key_padding_mask=mask).data
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-8)

    def test_attention_is_bidirectional(self):
        """Earlier positions attend to later ones (no causal mask)."""
        attn = nn.MultiHeadAttention(dim=8, num_heads=2, rng=np.random.default_rng(0))
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 4, 8))
        out1 = attn(Tensor(x.copy())).data
        x_changed = x.copy()
        x_changed[0, 3] += 5.0
        out2 = attn(Tensor(x_changed)).data
        assert not np.allclose(out1[0, 0], out2[0, 0])

    def test_gradients_flow(self):
        attn = nn.MultiHeadAttention(dim=8, num_heads=2)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestPairwiseAttentionMask:
    """The block-diagonal attn_mask that powers packed multi-graph batches.

    These are exact cross-path equalities (packed forward vs separate
    forwards at 1e-10), stated against the float64 reference backend; the
    float32 fast backend's parity bounds live in test_backend_parity.py.
    """

    @pytest.fixture(scope="class", autouse=True)
    def _reference_backend(self):
        with nn.use_backend("reference"):
            yield

    def _block_mask(self, sizes):
        segments = np.repeat(np.arange(len(sizes)), sizes)
        return segments[:, None] == segments[None, :]

    def test_block_mask_equals_separate_forwards(self):
        """Packing two sequences with a block mask == attending separately."""
        attn = nn.MultiHeadAttention(dim=8, num_heads=2, rng=np.random.default_rng(0))
        rng = np.random.default_rng(3)
        a = rng.normal(size=(3, 8))
        b = rng.normal(size=(5, 8))
        packed = np.concatenate([a, b], axis=0)
        out_packed = attn(Tensor(packed), attn_mask=self._block_mask([3, 5])).data
        out_a = attn(Tensor(a)).data
        out_b = attn(Tensor(b)).data
        np.testing.assert_allclose(out_packed[:3], out_a, atol=1e-10)
        np.testing.assert_allclose(out_packed[3:], out_b, atol=1e-10)

    def test_masked_positions_cannot_leak(self):
        """Perturbing one block must not change the other block's outputs."""
        attn = nn.MultiHeadAttention(dim=8, num_heads=2, rng=np.random.default_rng(0))
        rng = np.random.default_rng(4)
        x = rng.normal(size=(6, 8))
        mask = self._block_mask([2, 4])
        out1 = attn(Tensor(x.copy()), attn_mask=mask).data
        x_changed = x.copy()
        x_changed[3:] += 7.0  # second block only
        out2 = attn(Tensor(x_changed), attn_mask=mask).data
        np.testing.assert_array_equal(out1[:2], out2[:2])
        assert not np.allclose(out1[2:], out2[2:])

    def test_batched_3d_attn_mask(self):
        attn = nn.MultiHeadAttention(dim=8, num_heads=2, rng=np.random.default_rng(0))
        x = np.random.default_rng(5).normal(size=(2, 4, 8))
        mask = np.stack([self._block_mask([2, 2]), self._block_mask([1, 3])])
        out = attn(Tensor(x), attn_mask=mask)
        assert out.shape == (2, 4, 8)

    def test_attn_mask_combines_with_key_padding_mask(self):
        attn = nn.MultiHeadAttention(dim=8, num_heads=2, rng=np.random.default_rng(0))
        x = np.random.default_rng(6).normal(size=(1, 4, 8))
        pairwise = self._block_mask([2, 2])
        padding = np.array([[True, True, True, False]])
        out_both = attn(Tensor(x.copy()), key_padding_mask=padding, attn_mask=pairwise).data
        x_changed = x.copy()
        x_changed[0, 3] += 9.0  # padded AND other-block position
        out_changed = attn(Tensor(x_changed), key_padding_mask=padding, attn_mask=pairwise).data
        np.testing.assert_array_equal(out_both[0, :2], out_changed[0, :2])

    def test_invalid_attn_mask_rank_rejected(self):
        attn = nn.MultiHeadAttention(dim=8, num_heads=2)
        x = Tensor(np.zeros((1, 3, 8)))
        with pytest.raises(ValueError):
            attn(x, attn_mask=np.ones((1, 1, 3, 3), dtype=bool))

    def test_gradients_flow_through_mask(self):
        from gradcheck import gradcheck

        attn = nn.MultiHeadAttention(dim=4, num_heads=2, rng=np.random.default_rng(0))
        attn.eval()
        mask = self._block_mask([2, 2])
        x = np.random.default_rng(7).normal(size=(4, 4))
        gradcheck(lambda t: attn(t, attn_mask=mask).sum(), [x], atol=1e-4, rtol=1e-3)


class TestTransformerEncoder:
    def test_encoder_layer_shape(self):
        layer = nn.TransformerEncoderLayer(dim=16, num_heads=2)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(2, 7, 16))))
        assert out.shape == (2, 7, 16)

    def test_encoder_stack_shape_and_depth(self):
        encoder = nn.TransformerEncoder(dim=16, depth=3, num_heads=2)
        assert len(encoder.layers) == 3
        out = encoder(Tensor(np.random.default_rng(0).normal(size=(1, 5, 16))))
        assert out.shape == (1, 5, 16)

    def test_encoder_deterministic_in_eval(self):
        encoder = nn.TransformerEncoder(dim=8, depth=1, num_heads=2, dropout=0.2)
        encoder.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 8)))
        np.testing.assert_allclose(encoder(x).data, encoder(x).data)

    def test_feed_forward_shape(self):
        ff = nn.FeedForward(dim=8, hidden_dim=16)
        out = ff(Tensor(np.ones((3, 8))))
        assert out.shape == (3, 8)
