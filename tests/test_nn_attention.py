"""Tests for multi-head attention and transformer encoder blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestMultiHeadAttention:
    def test_output_shape_batched(self):
        attn = nn.MultiHeadAttention(dim=16, num_heads=4)
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_output_shape_unbatched(self):
        attn = nn.MultiHeadAttention(dim=8, num_heads=2)
        out = attn(Tensor(np.random.default_rng(0).normal(size=(6, 8))))
        assert out.shape == (6, 8)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(dim=10, num_heads=3)

    def test_padding_mask_blocks_padded_positions(self):
        """Changing a masked-out position must not change the output of valid ones."""
        attn = nn.MultiHeadAttention(dim=8, num_heads=2, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[True, True, True, False]])
        out1 = attn(Tensor(x.copy()), key_padding_mask=mask).data
        x_changed = x.copy()
        x_changed[0, 3] += 10.0
        out2 = attn(Tensor(x_changed), key_padding_mask=mask).data
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-8)

    def test_attention_is_bidirectional(self):
        """Earlier positions attend to later ones (no causal mask)."""
        attn = nn.MultiHeadAttention(dim=8, num_heads=2, rng=np.random.default_rng(0))
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 4, 8))
        out1 = attn(Tensor(x.copy())).data
        x_changed = x.copy()
        x_changed[0, 3] += 5.0
        out2 = attn(Tensor(x_changed)).data
        assert not np.allclose(out1[0, 0], out2[0, 0])

    def test_gradients_flow(self):
        attn = nn.MultiHeadAttention(dim=8, num_heads=2)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestTransformerEncoder:
    def test_encoder_layer_shape(self):
        layer = nn.TransformerEncoderLayer(dim=16, num_heads=2)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(2, 7, 16))))
        assert out.shape == (2, 7, 16)

    def test_encoder_stack_shape_and_depth(self):
        encoder = nn.TransformerEncoder(dim=16, depth=3, num_heads=2)
        assert len(encoder.layers) == 3
        out = encoder(Tensor(np.random.default_rng(0).normal(size=(1, 5, 16))))
        assert out.shape == (1, 5, 16)

    def test_encoder_deterministic_in_eval(self):
        encoder = nn.TransformerEncoder(dim=8, depth=1, num_heads=2, dropout=0.2)
        encoder.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 8)))
        np.testing.assert_allclose(encoder(x).data, encoder(x).data)

    def test_feed_forward_shape(self):
        ff = nn.FeedForward(dim=8, hidden_dim=16)
        out = ff(Tensor(np.ones((3, 8))))
        assert out.shape == (3, 8)
