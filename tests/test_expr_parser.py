"""Tests for the expression parser (round trips with the printer)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    And,
    ExpressionSyntaxError,
    Ite,
    Not,
    Or,
    Var,
    Xor,
    equivalent,
    parse,
    tokenize_expression,
)


class TestTokenizer:
    def test_tokenize_simple(self):
        tokens = tokenize_expression("!(a & b)")
        assert [t.text for t in tokens] == ["!", "(", "a", "&", "b", ")"]

    def test_tokenize_rejects_garbage(self):
        with pytest.raises(ExpressionSyntaxError):
            tokenize_expression("a @ b")

    def test_tokenize_bus_names(self):
        tokens = tokenize_expression("data[3] & addr_1")
        assert tokens[0].text == "data[3]"
        assert tokens[2].text == "addr_1"


class TestParser:
    def test_parse_paper_example(self):
        expr = parse("!((R1 ^ R2) | !R2)")
        assert expr == Not(Or(Xor(Var("R1"), Var("R2")), Not(Var("R2"))))

    def test_parse_assignment_prefix(self):
        expr = parse("U3 = !(R1 & R2)")
        assert expr == Not(And(Var("R1"), Var("R2")))

    def test_precedence_and_over_or(self):
        expr = parse("a | b & c")
        assert isinstance(expr, Or)
        assert isinstance(expr.operands[1], And)

    def test_precedence_xor_between(self):
        expr = parse("a ^ b & c | d")
        assert isinstance(expr, Or)
        assert isinstance(expr.operands[0], Xor)

    def test_parse_constants(self):
        assert parse("a & 1").evaluate({"a": True}) is True
        assert parse("a | 0").evaluate({"a": False}) is False

    def test_parse_ite(self):
        expr = parse("Ite(s, a, b)")
        assert isinstance(expr, Ite)
        assert expr.evaluate({"s": False, "a": True, "b": False}) is False

    def test_parse_nested_not(self):
        expr = parse("!!a")
        assert expr.evaluate({"a": True}) is True

    @pytest.mark.parametrize(
        "bad",
        ["", "a &", "(a | b", "a b", "Ite(a, b)", "= a", "a ) b"],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ExpressionSyntaxError):
            parse(bad)

    @pytest.mark.parametrize(
        "text",
        [
            "!((R1 ^ R2) | !R2)",
            "a & b & c",
            "(a | b) ^ !(c & d)",
            "Ite(sel, a & b, a | b)",
            "!(x1 & (x2 | !x3)) ^ x4",
        ],
    )
    def test_round_trip_preserves_function(self, text):
        expr = parse(text)
        reparsed = parse(expr.to_string())
        assert equivalent(expr, reparsed)


# A small recursive strategy for random expressions over three variables.
_VARIABLES = st.sampled_from(["a", "b", "c"]).map(Var)
_exprs = st.recursive(
    _VARIABLES,
    lambda children: st.one_of(
        children.map(Not),
        st.tuples(children, children).map(lambda pair: And(*pair)),
        st.tuples(children, children).map(lambda pair: Or(*pair)),
        st.tuples(children, children).map(lambda pair: Xor(*pair)),
    ),
    max_leaves=8,
)


@settings(max_examples=60, deadline=None)
@given(expr=_exprs)
def test_print_parse_round_trip_property(expr):
    """Property: printing then re-parsing yields a functionally equivalent expression."""
    reparsed = parse(expr.to_string())
    assert equivalent(expr, reparsed)
