"""Tests for register-cone chunking (repro.netlist.cone)."""

from __future__ import annotations

import pytest

from repro.netlist import (
    Netlist,
    combinational_fanin,
    cone_statistics,
    extract_register_cone,
    extract_register_cones,
    whole_circuit_cone,
)


class TestCombinationalFanin:
    def test_stops_at_primary_inputs(self, tiny_netlist):
        members = {g.name for g in combinational_fanin(tiny_netlist, "r_state")}
        assert members == {"u_xor", "u_inv", "u_or", "u_out"}

    def test_stops_at_other_registers(self, library):
        netlist = Netlist("two_regs", library=library)
        netlist.add_primary_input("a")
        netlist.add_gate("u1", "INV_X1", ["a"], "n1")
        netlist.add_gate("r1", "DFF_X1", {"D": "n1"}, "q1")
        netlist.add_gate("u2", "AND2_X1", ["q1", "a"], "n2")
        netlist.add_gate("r2", "DFF_X1", {"D": "n2"}, "q2")
        members = {g.name for g in combinational_fanin(netlist, "r2")}
        assert members == {"u2"}  # traversal must not cross r1

    def test_register_accepts_gate_or_name(self, tiny_netlist):
        by_name = {g.name for g in combinational_fanin(tiny_netlist, "r_state")}
        by_gate = {g.name for g in combinational_fanin(tiny_netlist, tiny_netlist.gates["r_state"])}
        assert by_name == by_gate


class TestExtractRegisterCone:
    def test_cone_is_a_valid_standalone_netlist(self, tiny_netlist):
        cone = extract_register_cone(tiny_netlist, "r_state")
        cone.netlist.validate()
        assert cone.register_name == "r_state"
        assert cone.parent_name == tiny_netlist.name
        assert cone.netlist.primary_outputs == ["q_state"]

    def test_cone_members_include_register(self, tiny_netlist):
        cone = extract_register_cone(tiny_netlist, "r_state")
        assert "r_state" in cone.member_gates
        assert set(cone.member_gates) == {"r_state", "u_xor", "u_inv", "u_or", "u_out"}

    def test_boundary_inputs_are_design_inputs(self, tiny_netlist):
        cone = extract_register_cone(tiny_netlist, "r_state")
        assert set(cone.boundary_inputs) == {"a", "b"}

    def test_endpoint_data_net(self, tiny_netlist):
        cone = extract_register_cone(tiny_netlist, "r_state")
        assert cone.endpoint_data_net == "n_out"

    def test_register_attributes_propagate_to_cone(self, tiny_netlist):
        cone = extract_register_cone(tiny_netlist, "r_state")
        assert cone.attributes.get("role") == "state"

    def test_self_feedback_register_keeps_own_output_internal(self, library):
        netlist = Netlist("counter_bit", library=library)
        netlist.add_primary_input("en")
        netlist.add_gate("u_t", "XOR2_X1", ["q", "en"], "d")
        netlist.add_gate("r_q", "DFF_X1", {"D": "d"}, "q")
        cone = extract_register_cone(netlist, "r_q")
        assert "q" not in cone.boundary_inputs
        assert set(cone.boundary_inputs) == {"en"}
        cone.netlist.validate()


class TestExtractRegisterCones:
    def test_one_cone_per_register(self, seq_netlist):
        cones = extract_register_cones(seq_netlist)
        assert len(cones) == len(seq_netlist.registers)
        assert sorted(c.register_name for c in cones) == sorted(g.name for g in seq_netlist.registers)

    def test_max_cones_cap(self, seq_netlist):
        cones = extract_register_cones(seq_netlist, max_cones=2)
        assert len(cones) == 2

    def test_every_cone_validates(self, seq_netlist):
        for cone in extract_register_cones(seq_netlist):
            cone.netlist.validate()

    def test_cones_cover_all_driving_logic(self, seq_netlist):
        """Every combinational gate that drives some register appears in >= 1 cone."""
        member_union = set()
        for cone in extract_register_cones(seq_netlist):
            member_union |= set(cone.member_gates)
        for register in seq_netlist.registers:
            for gate in combinational_fanin(seq_netlist, register):
                assert gate.name in member_union

    def test_combinational_design_yields_whole_circuit_cone(self, comb_netlist):
        cones = extract_register_cones(comb_netlist)
        assert len(cones) == 1
        assert cones[0].attributes.get("combinational") is True
        assert cones[0].num_gates == comb_netlist.num_gates


class TestWholeCircuitCone:
    def test_wraps_full_netlist(self, comb_netlist):
        cone = whole_circuit_cone(comb_netlist)
        assert cone.num_gates == comb_netlist.num_gates
        assert set(cone.boundary_inputs) == set(comb_netlist.primary_inputs)
        assert cone.parent_name == comb_netlist.name

    def test_statistics(self, seq_netlist):
        cones = extract_register_cones(seq_netlist)
        stats = cone_statistics(cones)
        assert stats["num_cones"] == len(cones)
        assert stats["avg_gates"] == pytest.approx(
            sum(c.num_gates for c in cones) / len(cones)
        )
        assert stats["max_gates"] == max(c.num_gates for c in cones)

    def test_statistics_empty(self):
        stats = cone_statistics([])
        assert stats["num_cones"] == 0
        assert stats["avg_gates"] == 0.0
