"""Property-based fast-vs-reference parity for the kernel backend interface.

Every kernel op behind :class:`repro.nn.backend.KernelBackend` — matmul,
reductions, elementwise nonlinearities, the softmax family and the fused
linear / layer-norm kernels — is exercised under hypothesis across dtypes,
shapes and broadcast patterns.  The fast backend (float32 compute, float64
accumulation) must stay within a float32-rounding bound of the float64
reference; the reference backend must stay *bit-identical* to the raw numpy
expressions the engine historically inlined.

Fused backward paths are gradient-checked in float64 (via the reference
backend, whose fused kernels share the implementation), and the segment
attention path is checked against the dense block-diagonal-mask path it
replaces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from gradcheck import gradcheck
from repro.nn import (
    MultiHeadAttention,
    SegmentSpec,
    Tensor,
    resolve_backend,
    use_backend,
)
from repro.nn.functional import fused_layer_norm, fused_linear

REF = resolve_backend("reference")
FAST = resolve_backend("fast")

EPS32 = float(np.finfo(np.float32).eps)
DTYPES = (np.float64, np.float32)
ACTIVATIONS = (None, "relu", "gelu", "tanh")

finite = st.floats(min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False)


def arrays(shape, dtype=np.float64):
    return hnp.arrays(dtype=dtype, shape=shape, elements=finite)


def small_shapes(min_dims=1, max_dims=3):
    return hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=6)


def assert_within(fast_out, ref_out, bound):
    """Elementwise |fast - ref| <= bound (both promoted to float64)."""
    fast64 = np.asarray(fast_out, dtype=np.float64)
    ref64 = np.asarray(ref_out, dtype=np.float64)
    np.testing.assert_array_less(
        np.abs(fast64 - ref64), np.broadcast_to(np.asarray(bound, dtype=np.float64), ref64.shape) + 1e-300
    )


# ----------------------------------------------------------------------
# Reference backend: bit-identical to the historical numpy expressions
# ----------------------------------------------------------------------
class TestReferenceBitIdentity:
    @given(st.data(), small_shapes())
    @settings(max_examples=40, deadline=None)
    def test_elementwise_and_softmax(self, data, shape):
        x = data.draw(arrays(shape))
        assert np.array_equal(REF.exp(x), np.exp(x))
        assert np.array_equal(REF.tanh(x), np.tanh(x))
        assert np.array_equal(REF.sigmoid(x), 1.0 / (1.0 + np.exp(-x)))
        out, mask = REF.relu(x)
        assert np.array_equal(out, x * (x > 0))
        assert np.array_equal(mask, (x > 0).astype(x.dtype))
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        assert np.array_equal(REF.softmax(x), exp / exp.sum(axis=-1, keepdims=True))
        assert np.array_equal(
            REF.log_softmax(x), shifted - np.log(exp.sum(axis=-1, keepdims=True))
        )
        assert np.array_equal(REF.sum(x, axis=-1), x.sum(axis=-1))

    @given(st.data(), st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_matmul(self, data, n, m, k):
        a = data.draw(arrays((n, m)))
        b = data.draw(arrays((m, k)))
        assert np.array_equal(REF.matmul(a, b), a @ b)
        # float64 payloads pass through untouched
        assert REF.asarray(a) is a

    def test_reference_policy_flags(self):
        assert REF.compute_dtype == np.float64
        assert not REF.fused
        assert not REF.segment_attention
        assert FAST.compute_dtype == np.float32
        assert FAST.accum_dtype == np.float64
        assert FAST.fused
        assert FAST.segment_attention


# ----------------------------------------------------------------------
# Fast backend: float32 parity with the float64 reference, all ops
# ----------------------------------------------------------------------
class TestFastKernelParity:
    @given(st.data(), st.integers(1, 5), st.integers(1, 6), st.integers(1, 5),
           st.sampled_from(DTYPES), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_matmul(self, data, n, m, k, dtype, batched):
        shape_a = (2, n, m) if batched else (n, m)
        a = data.draw(arrays(shape_a, dtype))
        b = data.draw(arrays((m, k), dtype))
        out = FAST.matmul(a, b)
        assert out.dtype == np.float32
        a64 = np.asarray(a, dtype=np.float64)
        b64 = np.asarray(b, dtype=np.float64)
        # accumulation + input-cast rounding, elementwise magnitude bound
        bound = 1e-6 + 8 * (m + 2) * EPS32 * (np.abs(a64) @ np.abs(b64))
        assert_within(out, a64 @ b64, bound)

    @given(st.data(), small_shapes(), st.sampled_from(DTYPES),
           st.sampled_from([None, 0, -1]), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_sum_accumulates_in_float64(self, data, shape, dtype, axis, keepdims):
        x = data.draw(arrays(shape, dtype))
        out = FAST.sum(x, axis=axis, keepdims=keepdims)
        assert np.asarray(out).dtype == np.float32
        x64 = np.asarray(x, dtype=np.float64)
        ref = x64.sum(axis=axis, keepdims=keepdims)
        # float64 master accumulation: only the input cast and the final
        # narrowing round — no O(n) float32 error growth.
        bound = 1e-6 + 4 * EPS32 * np.abs(x64).sum(axis=axis, keepdims=keepdims)
        assert_within(out, ref, bound)

    @given(st.data(), small_shapes(), st.sampled_from(DTYPES))
    @settings(max_examples=60, deadline=None)
    def test_elementwise(self, data, shape, dtype):
        x = data.draw(arrays(shape, dtype))
        x64 = np.asarray(x, dtype=np.float64)
        x32 = np.asarray(x, dtype=np.float32)
        np.testing.assert_allclose(FAST.exp(x32), np.exp(x64), rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(FAST.tanh(x32), np.tanh(x64), rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(
            FAST.sigmoid(x32), 1.0 / (1.0 + np.exp(-x64)), rtol=1e-4, atol=1e-6
        )
        fast_relu, _ = FAST.relu(x32)
        ref_relu, _ = REF.relu(x64)
        np.testing.assert_allclose(fast_relu, ref_relu, rtol=1e-5, atol=1e-6)
        fast_gelu, _ = FAST.gelu(x32)
        ref_gelu, _ = REF.gelu(x64)
        np.testing.assert_allclose(fast_gelu, ref_gelu, rtol=1e-4, atol=1e-5)

    @given(st.data(), small_shapes(), st.sampled_from(DTYPES))
    @settings(max_examples=60, deadline=None)
    def test_softmax_family(self, data, shape, dtype):
        x = data.draw(arrays(shape, dtype))
        x64 = np.asarray(x, dtype=np.float64)
        fast_sm = FAST.softmax(x)
        assert fast_sm.dtype == np.float32
        np.testing.assert_allclose(fast_sm, REF.softmax(x64), atol=1e-5)
        np.testing.assert_allclose(
            np.asarray(fast_sm, dtype=np.float64).sum(axis=-1), 1.0, atol=1e-5
        )
        np.testing.assert_allclose(
            FAST.log_softmax(x), REF.log_softmax(x64), atol=1e-4, rtol=1e-5
        )

    @given(st.data(), st.integers(1, 4), st.integers(1, 6), st.integers(1, 5),
           st.sampled_from(ACTIVATIONS), st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_fused_linear(self, data, n, fan_in, fan_out, activation, use_bias, batched):
        x_shape = (2, n, fan_in) if batched else (n, fan_in)
        x = data.draw(arrays(x_shape))
        w = data.draw(arrays((fan_in, fan_out)))
        b = data.draw(arrays((fan_out,))) if use_bias else None
        ref_out, _ = REF.linear(x, w, b, activation)
        fast_out, _ = FAST.linear(x, w, b, activation)
        assert fast_out.dtype == np.float32
        assert fast_out.shape == ref_out.shape
        # pre-activation magnitude bound; every fused activation is
        # (roughly) 1-Lipschitz so the bound survives the nonlinearity.
        pre_mag = np.abs(x).reshape(-1, fan_in) @ np.abs(w)
        if b is not None:
            pre_mag = pre_mag + np.abs(b)
        bound = (1e-5 + 16 * (fan_in + 2) * EPS32 * pre_mag).reshape(ref_out.shape)
        assert_within(fast_out, ref_out, bound)

    @given(st.data(), st.integers(1, 4), st.integers(2, 6), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_fused_layer_norm(self, data, rows, dim, batched):
        shape = (2, rows, dim) if batched else (rows, dim)
        x = data.draw(arrays(shape))
        gamma = data.draw(arrays((dim,)))
        beta = data.draw(arrays((dim,)))
        eps = 1e-5
        ref_out, (_, inv_std, _) = REF.layer_norm(x, gamma, beta, eps)
        fast_out, _ = FAST.layer_norm(
            x.astype(np.float32), gamma.astype(np.float32), beta.astype(np.float32), eps
        )
        assert fast_out.dtype == np.float32
        # Centring nearly-equal rows cancels in float32, and the loss is then
        # amplified by inv_std — the bound must carry both factors.
        row_mag = np.abs(x).max(axis=-1, keepdims=True) + 1.0
        bound = 1e-5 + 64 * EPS32 * row_mag * inv_std * (np.abs(gamma) + 1.0)
        assert_within(fast_out, ref_out, bound)


# ----------------------------------------------------------------------
# Fused backward paths: gradient-checked in float64
# ----------------------------------------------------------------------
class TestFusedGradcheck:
    @pytest.mark.parametrize("activation", ACTIVATIONS)
    @pytest.mark.parametrize("use_bias", [True, False])
    def test_fused_linear_gradients(self, activation, use_bias):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 5))
        with use_backend("reference"):
            if use_bias:
                b = rng.normal(size=(5,))
                gradcheck(
                    lambda x, w, b: fused_linear(x, w, b, activation=activation).sum(),
                    [x, w, b],
                )
            else:
                gradcheck(
                    lambda x, w: fused_linear(x, w, None, activation=activation).sum(),
                    [x, w],
                )

    def test_fused_linear_gradients_batched_input(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(4, 3))
        b = rng.normal(size=(3,))
        with use_backend("reference"):
            gradcheck(lambda x, w, b: fused_linear(x, w, b, activation="gelu").sum(), [x, w, b])

    @pytest.mark.parametrize("shape", [(3, 5), (2, 3, 4)])
    def test_fused_layer_norm_gradients(self, shape):
        rng = np.random.default_rng(13)
        x = rng.normal(size=shape)
        gamma = rng.normal(size=(shape[-1],))
        beta = rng.normal(size=(shape[-1],))
        with use_backend("reference"):
            gradcheck(lambda x, g, b: fused_layer_norm(x, g, b).sum(), [x, gamma, beta])

    def test_fused_matches_composed_float64(self):
        """Under float64 the fused layer-norm node equals the composed path."""
        rng = np.random.default_rng(17)
        x = rng.normal(size=(4, 6))
        gamma = rng.normal(size=(6,))
        beta = rng.normal(size=(6,))
        with use_backend("reference"):
            from repro.nn.functional import layer_norm

            composed = layer_norm(Tensor(x), Tensor(gamma), Tensor(beta))
            fused = fused_layer_norm(Tensor(x), Tensor(gamma), Tensor(beta))
        np.testing.assert_allclose(fused.data, composed.data, rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# Segment attention ≡ dense block-diagonal-mask attention
# ----------------------------------------------------------------------
class TestSegmentAttentionParity:
    def _block_diag_mask(self, sizes):
        total = sum(sizes)
        mask = np.zeros((total, total), dtype=bool)
        start = 0
        for size in sizes:
            mask[start : start + size, start : start + size] = True
            start += size
        return mask

    @pytest.mark.parametrize("sizes", [[2, 3], [1, 4, 4, 2], [3]])
    def test_matches_dense_masked_attention(self, sizes):
        rng = np.random.default_rng(23)
        dim, heads = 8, 2
        total = sum(sizes)
        with use_backend("reference"):
            attn = MultiHeadAttention(dim, heads, rng=rng)
            x = rng.normal(size=(total, dim))
            dense = attn(Tensor(x), attn_mask=self._block_diag_mask(sizes))
            starts = np.cumsum([0] + sizes[:-1])
            spec = SegmentSpec(
                [np.arange(s, s + n) for s, n in zip(starts, sizes)]
            )
            segmented = attn(Tensor(x), segments=spec)
        np.testing.assert_allclose(segmented.data, dense.data, rtol=1e-10, atol=1e-12)

    def test_non_contiguous_rows_and_gradients(self):
        """Segments with scattered rows (node rows + trailing CLS slot)."""
        rng = np.random.default_rng(29)
        dim, heads = 8, 4
        # rows 0-4 are nodes of two graphs; rows 5-6 are their CLS slots
        segments = [np.array([0, 1, 5]), np.array([2, 3, 4, 6])]
        perm_mask = np.zeros((7, 7), dtype=bool)
        for rows in segments:
            perm_mask[np.ix_(rows, rows)] = True
        with use_backend("reference"):
            attn = MultiHeadAttention(dim, heads, rng=rng)
            x = rng.normal(size=(7, dim))
            dense = attn(Tensor(x), attn_mask=perm_mask)
            xt = Tensor(x, requires_grad=True)
            segmented = attn(xt, segments=SegmentSpec(segments))
            segmented.sum().backward()
        np.testing.assert_allclose(segmented.data, dense.data, rtol=1e-10, atol=1e-12)
        assert xt.grad is not None and np.all(np.isfinite(xt.grad))

    def test_propagate_matches_dense_block_diagonal(self):
        rng = np.random.default_rng(31)
        sizes = [2, 3, 2]
        blocks = [rng.normal(size=(s, s)) for s in sizes]
        starts = np.cumsum([0] + sizes[:-1])
        spec = SegmentSpec(
            [np.arange(s, s + n) for s, n in zip(starts, sizes)], blocks=blocks
        )
        dense = np.zeros((sum(sizes), sum(sizes)))
        for s, block in zip(starts, blocks):
            dense[s : s + block.shape[0], s : s + block.shape[0]] = block
        hidden = rng.normal(size=(sum(sizes), 5))
        with use_backend("reference"):
            out = spec.propagate(Tensor(hidden))
        np.testing.assert_allclose(out.data, dense @ hidden, rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# End-to-end module parity under use_backend
# ----------------------------------------------------------------------
class TestModuleParity:
    def _rel(self, fast, ref):
        num = float(np.linalg.norm(np.asarray(fast, np.float64) - ref))
        return num / max(float(np.linalg.norm(ref)), 1e-12)

    def test_mlp_forward_parity(self):
        from repro.nn import GELU, LayerNorm, Linear, Sequential

        rng = np.random.default_rng(37)
        x = rng.normal(size=(6, 16))
        outputs = {}
        for name in ("reference", "fast"):
            with use_backend(name):
                mrng = np.random.default_rng(41)
                mlp = Sequential(
                    Linear(16, 32, rng=mrng), GELU(), Linear(32, 8, rng=mrng), LayerNorm(8)
                )
                outputs[name] = np.asarray(mlp(Tensor(x)).data, dtype=np.float64)
        assert outputs["fast"].dtype == np.float64  # promoted copy for comparison
        assert self._rel(outputs["fast"], outputs["reference"]) <= 1e-5

    def test_encoder_batch_parity(self):
        """The ISSUE-level guarantee: fast encode within 1e-5 of reference."""
        from repro.bench.throughput import build_cone_workload, run_backend_parity
        from repro.core import NetTAG, NetTAGConfig

        model = NetTAG(NetTAGConfig.fast(), rng=np.random.default_rng(3))
        cones = build_cone_workload(num_designs=2)
        max_rel = run_backend_parity(model, cones, rtol=1e-5)
        assert max_rel <= 1e-5
