"""Tests for the analysis engines: static timing, power and area."""

from __future__ import annotations

import pytest

from repro.analysis import (
    analyze_area,
    analyze_power,
    analyze_timing,
    critical_path_delay,
    register_slack_labels,
)
from repro.physical import extract_parasitics, physically_optimize, place


class TestStaticTiming:
    def test_endpoint_slack_per_register(self, seq_netlist):
        report = analyze_timing(seq_netlist, clock_period=1.2)
        assert set(report.endpoint_slack) == {g.name for g in seq_netlist.registers}

    def test_slack_is_period_minus_arrival(self, seq_netlist):
        report = analyze_timing(seq_netlist, clock_period=1.2)
        for slack in report.endpoint_slack.values():
            assert slack <= 1.2 + 1e-9

    def test_longer_clock_period_gives_more_slack(self, seq_netlist):
        tight = analyze_timing(seq_netlist, clock_period=0.5)
        relaxed = analyze_timing(seq_netlist, clock_period=2.0)
        for register in tight.endpoint_slack:
            assert relaxed.endpoint_slack[register] > tight.endpoint_slack[register]
        assert relaxed.worst_negative_slack > tight.worst_negative_slack

    def test_arrival_times_nonnegative(self, seq_netlist):
        report = analyze_timing(seq_netlist)
        assert all(value >= 0.0 for value in report.arrival_times.values())
        assert report.worst_arrival == max(report.arrival_times.values())

    def test_critical_path_is_nonempty_and_consistent(self, seq_netlist):
        report = analyze_timing(seq_netlist)
        assert report.critical_path
        assert critical_path_delay(report) == pytest.approx(report.worst_arrival)

    def test_total_negative_slack_only_counts_violations(self, seq_netlist):
        report = analyze_timing(seq_netlist, clock_period=5.0)
        assert report.total_negative_slack <= 0.0
        if report.worst_negative_slack >= 0.0:
            assert report.total_negative_slack == 0.0

    def test_parasitics_increase_delay(self, seq_netlist):
        placement = place(seq_netlist)
        spef = extract_parasitics(seq_netlist, placement)
        without = analyze_timing(seq_netlist)
        with_spef = analyze_timing(seq_netlist, spef=spef)
        assert with_spef.worst_arrival >= without.worst_arrival * 0.5  # same order of magnitude
        assert with_spef.worst_arrival > 0.0

    def test_register_slack_labels_helper(self, seq_netlist):
        report = analyze_timing(seq_netlist)
        labels = register_slack_labels(report)
        assert labels == report.endpoint_slack

    def test_combinational_design_has_no_endpoints(self, comb_netlist):
        report = analyze_timing(comb_netlist)
        assert report.endpoint_slack == {}
        assert report.worst_negative_slack == 0.0
        assert report.worst_arrival > 0.0


class TestPowerAnalysis:
    def test_breakdown_components_nonnegative(self, seq_netlist):
        report = analyze_power(seq_netlist)
        assert report.leakage > 0.0
        assert report.switching >= 0.0
        assert report.internal >= 0.0
        assert report.clock_tree >= 0.0
        assert report.total == pytest.approx(
            round(report.leakage + report.internal + report.switching + report.clock_tree, 4)
        )

    def test_higher_activity_means_more_power(self, seq_netlist):
        quiet = analyze_power(seq_netlist, input_toggle_rate=0.05)
        busy = analyze_power(seq_netlist, input_toggle_rate=0.6)
        assert busy.total > quiet.total

    def test_higher_frequency_means_more_power(self, seq_netlist):
        slow = analyze_power(seq_netlist, clock_freq_ghz=0.5)
        fast = analyze_power(seq_netlist, clock_freq_ghz=2.0)
        assert fast.total > slow.total

    def test_invalid_frequency_rejected(self, seq_netlist):
        with pytest.raises(ValueError):
            analyze_power(seq_netlist, clock_freq_ghz=0.0)

    def test_sequential_design_has_clock_tree_power(self, seq_netlist, comb_netlist):
        assert analyze_power(seq_netlist).clock_tree > 0.0
        assert analyze_power(comb_netlist).clock_tree == 0.0

    def test_as_dict_round_trip(self, seq_netlist):
        report = analyze_power(seq_netlist)
        data = report.as_dict()
        assert data["total"] == report.total
        assert set(data) == {"leakage", "internal", "switching", "clock_tree", "total"}


class TestAreaAnalysis:
    def test_total_includes_routing_overhead(self, comb_netlist):
        placement = place(comb_netlist)
        report = analyze_area(comb_netlist, placement)
        assert report.cell_area == pytest.approx(round(comb_netlist.total_area(), 4))
        assert report.total > report.cell_area
        assert report.die_area >= report.cell_area

    def test_area_without_placement_uses_default_utilisation(self, comb_netlist):
        report = analyze_area(comb_netlist)
        assert report.die_area == pytest.approx(report.cell_area / 0.7, rel=1e-6)

    def test_physical_optimization_changes_area_labels(self, comb_netlist):
        """The Task-4 'w/ opt' scenario must differ from the 'w/o opt' scenario."""
        placement = place(comb_netlist)
        baseline = analyze_area(comb_netlist, placement)
        optimized, report = physically_optimize(
            comb_netlist, placement, fanout_threshold=2, wirelength_threshold=5.0
        )
        opt_placement = place(optimized)
        after = analyze_area(optimized, opt_placement)
        if report.total_changes:
            assert after.total != baseline.total

    def test_as_dict(self, comb_netlist):
        report = analyze_area(comb_netlist, place(comb_netlist))
        data = report.as_dict()
        assert set(data) == {"cell_area", "routing_overhead", "total", "die_area"}
        assert data["total"] == report.total
