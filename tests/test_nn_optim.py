"""Tests for the optimisers, LR schedule and LoRA adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


def _fit_line(optimizer_factory, steps: int = 200) -> float:
    """Fit y = 2x + 1 with a single Linear layer; return the final MSE."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 1))
    y = 2.0 * x + 1.0
    model = nn.Linear(1, 1, rng=rng)
    optimizer = optimizer_factory(model.parameters())
    loss_value = np.inf
    for _ in range(steps):
        predictions = model(Tensor(x))
        loss = nn.mse_loss(predictions, y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        loss_value = loss.item()
    return loss_value


class TestOptimizers:
    def test_sgd_converges_on_linear_regression(self):
        assert _fit_line(lambda p: nn.SGD(p, lr=0.1, momentum=0.9)) < 1e-3

    def test_adam_converges_on_linear_regression(self):
        assert _fit_line(lambda p: nn.Adam(p, lr=0.05)) < 1e-3

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([Tensor(np.ones(1), requires_grad=True)], lr=0.0)

    def test_weight_decay_shrinks_weights(self):
        param = Tensor(np.full(3, 10.0), requires_grad=True)
        optimizer = nn.Adam([param], lr=0.01, weight_decay=0.5)
        param.grad = np.zeros(3)
        optimizer.step()
        assert np.all(np.abs(param.data) < 10.0)

    def test_grad_clip_limits_update(self):
        param = Tensor(np.zeros(4), requires_grad=True)
        optimizer = nn.Adam([param], lr=1.0, grad_clip=1e-3)
        param.grad = np.full(4, 1e6)
        optimizer.step()
        assert np.all(np.abs(param.data) <= 1.0 + 1e-9)

    def test_step_skips_parameters_without_grad(self):
        param = Tensor(np.ones(2), requires_grad=True)
        optimizer = nn.SGD([param], lr=0.1)
        optimizer.step()  # no gradient -> no change, no crash
        np.testing.assert_allclose(param.data, np.ones(2))


class TestCosineSchedule:
    def test_warmup_then_decay(self):
        param = Tensor(np.ones(1), requires_grad=True)
        optimizer = nn.Adam([param], lr=1.0)
        schedule = nn.CosineSchedule(optimizer, total_steps=10, warmup_steps=2, min_lr=0.1)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] < lrs[1]                       # warmup increases
        assert lrs[1] == pytest.approx(1.0)          # peak at base lr
        assert lrs[-1] == pytest.approx(0.1, abs=1e-6)  # decays to min lr
        assert all(lrs[i] >= lrs[i + 1] for i in range(2, 9))

    def test_invalid_total_steps(self):
        param = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            nn.CosineSchedule(nn.SGD([param], lr=0.1), total_steps=0)


class TestLoRA:
    def test_lora_starts_as_identity(self):
        base = nn.Linear(4, 3, rng=np.random.default_rng(0))
        lora = nn.LoRALinear(base, rank=2)
        x = Tensor(np.random.default_rng(1).normal(size=(5, 4)))
        np.testing.assert_allclose(lora(x).data, base(x).data)

    def test_lora_parameters_exclude_base(self):
        base = nn.Linear(4, 3)
        lora = nn.LoRALinear(base, rank=2)
        names = {name for name, _ in lora.named_parameters()}
        assert names == {"lora_a", "lora_b"}

    def test_apply_lora_wraps_nested_linears(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        wrapped = nn.apply_lora(model, rank=2)
        assert wrapped == 2
        out = model(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 2)

    def test_lora_training_changes_output(self):
        base = nn.Linear(2, 2, rng=np.random.default_rng(0))
        lora = nn.LoRALinear(base, rank=1)
        optimizer = nn.Adam(lora.parameters(), lr=0.1)
        x = np.random.default_rng(1).normal(size=(8, 2))
        target = np.random.default_rng(2).normal(size=(8, 2))
        before = lora(Tensor(x)).data.copy()
        for _ in range(20):
            loss = nn.mse_loss(lora(Tensor(x)), target)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        after = lora(Tensor(x)).data
        assert not np.allclose(before, after)
        # The frozen base projection itself is untouched.
        merged = lora.merged_weight()
        assert merged.shape == (2, 2)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            nn.LoRALinear(nn.Linear(2, 2), rank=0)
