"""Tests for the optimisers, LR schedule and LoRA adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


def _fit_line(optimizer_factory, steps: int = 200) -> float:
    """Fit y = 2x + 1 with a single Linear layer; return the final MSE."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 1))
    y = 2.0 * x + 1.0
    model = nn.Linear(1, 1, rng=rng)
    optimizer = optimizer_factory(model.parameters())
    loss_value = np.inf
    for _ in range(steps):
        predictions = model(Tensor(x))
        loss = nn.mse_loss(predictions, y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        loss_value = loss.item()
    return loss_value


class TestOptimizers:
    def test_sgd_converges_on_linear_regression(self):
        assert _fit_line(lambda p: nn.SGD(p, lr=0.1, momentum=0.9)) < 1e-3

    def test_adam_converges_on_linear_regression(self):
        assert _fit_line(lambda p: nn.Adam(p, lr=0.05)) < 1e-3

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([Tensor(np.ones(1), requires_grad=True)], lr=0.0)

    def test_weight_decay_shrinks_weights(self):
        param = Tensor(np.full(3, 10.0), requires_grad=True)
        optimizer = nn.Adam([param], lr=0.01, weight_decay=0.5)
        param.grad = np.zeros(3)
        optimizer.step()
        assert np.all(np.abs(param.data) < 10.0)

    def test_grad_clip_limits_update(self):
        param = Tensor(np.zeros(4), requires_grad=True)
        optimizer = nn.Adam([param], lr=1.0, grad_clip=1e-3)
        param.grad = np.full(4, 1e6)
        optimizer.step()
        assert np.all(np.abs(param.data) <= 1.0 + 1e-9)

    def test_step_skips_parameters_without_grad(self):
        param = Tensor(np.ones(2), requires_grad=True)
        optimizer = nn.SGD([param], lr=0.1)
        optimizer.step()  # no gradient -> no change, no crash
        np.testing.assert_allclose(param.data, np.ones(2))


def _train_steps(model: nn.Linear, optimizer, x, y, steps: int) -> None:
    for _ in range(steps):
        loss = nn.mse_loss(model(Tensor(x)), y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()


@pytest.mark.parametrize("factory", [
    lambda p: nn.SGD(p, lr=0.05, momentum=0.9, weight_decay=1e-3),
    lambda p: nn.Adam(p, lr=0.05, weight_decay=1e-3, grad_clip=1.0),
], ids=["sgd", "adam"])
class TestOptimizerStateRoundTrip:
    def test_restored_optimizer_continues_identically(self, factory):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 3))
        y = x @ np.array([[1.0], [-2.0], [0.5]]) + 0.3

        model_a = nn.Linear(3, 1, rng=np.random.default_rng(1))
        optimizer_a = factory(model_a.parameters())
        _train_steps(model_a, optimizer_a, x, y, 5)
        saved_params = [p.data.copy() for p in model_a.parameters()]
        saved_state = optimizer_a.state_dict()
        _train_steps(model_a, optimizer_a, x, y, 5)
        reference = [p.data.copy() for p in model_a.parameters()]

        # Fresh model+optimizer restored from the snapshot must land on the
        # exact same parameters after the same remaining steps (the moments /
        # velocity and step counter all carry over).
        model_b = nn.Linear(3, 1, rng=np.random.default_rng(2))
        for param, value in zip(model_b.parameters(), saved_params):
            param.data = value.copy()
        optimizer_b = factory(model_b.parameters())
        optimizer_b.load_state_dict(saved_state)
        _train_steps(model_b, optimizer_b, x, y, 5)
        for a, b in zip(reference, model_b.parameters()):
            np.testing.assert_array_equal(a, b.data)

    def test_state_dict_buffers_are_copies(self, factory):
        param = Tensor(np.ones(3), requires_grad=True)
        optimizer = factory([param])
        param.grad = np.ones(3)
        optimizer.step()
        state = optimizer.state_dict()
        snapshot = {
            key: [buf.copy() for buf in value]
            for key, value in state.items() if isinstance(value, list)
        }
        param.grad = np.full(3, 7.0)
        optimizer.step()  # mutates internal buffers, must not touch the snapshot
        for key, buffers in snapshot.items():
            for before, after in zip(buffers, state[key]):
                np.testing.assert_array_equal(before, after)

    def test_buffer_count_mismatch_rejected(self, factory):
        params = [Tensor(np.ones(2), requires_grad=True)]
        optimizer = factory(params)
        state = optimizer.state_dict()
        two = [Tensor(np.ones(2), requires_grad=True), Tensor(np.ones(2), requires_grad=True)]
        other = factory(two)
        buffered = [k for k, v in state.items() if isinstance(v, list)]
        if buffered:
            with pytest.raises(ValueError):
                other.load_state_dict(state)


class TestGradClipHelpers:
    def test_clip_grad_norm_scales_in_place(self):
        params = [Tensor(np.zeros(4), requires_grad=True)]
        params[0].grad = np.full(4, 3.0)
        norm = nn.clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(6.0)
        assert np.linalg.norm(params[0].grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_leaves_small_grads_alone(self):
        params = [Tensor(np.zeros(2), requires_grad=True)]
        params[0].grad = np.array([0.1, 0.2])
        nn.clip_grad_norm(params, max_norm=10.0)
        np.testing.assert_allclose(params[0].grad, [0.1, 0.2])

    def test_global_grad_norm_ignores_missing_grads(self):
        with_grad = Tensor(np.zeros(2), requires_grad=True)
        with_grad.grad = np.array([3.0, 4.0])
        without = Tensor(np.zeros(2), requires_grad=True)
        assert nn.global_grad_norm([with_grad, without]) == pytest.approx(5.0)


class TestCosineSchedule:
    def test_warmup_then_decay(self):
        param = Tensor(np.ones(1), requires_grad=True)
        optimizer = nn.Adam([param], lr=1.0)
        schedule = nn.CosineSchedule(optimizer, total_steps=10, warmup_steps=2, min_lr=0.1)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] < lrs[1]                       # warmup increases
        assert lrs[1] == pytest.approx(1.0)          # peak at base lr
        assert lrs[-1] == pytest.approx(0.1, abs=1e-6)  # decays to min lr
        assert all(lrs[i] >= lrs[i + 1] for i in range(2, 9))

    def test_invalid_total_steps(self):
        param = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            nn.CosineSchedule(nn.SGD([param], lr=0.1), total_steps=0)


class TestLoRA:
    def test_lora_starts_as_identity(self):
        base = nn.Linear(4, 3, rng=np.random.default_rng(0))
        lora = nn.LoRALinear(base, rank=2)
        x = Tensor(np.random.default_rng(1).normal(size=(5, 4)))
        np.testing.assert_allclose(lora(x).data, base(x).data)

    def test_lora_parameters_exclude_base(self):
        base = nn.Linear(4, 3)
        lora = nn.LoRALinear(base, rank=2)
        names = {name for name, _ in lora.named_parameters()}
        assert names == {"lora_a", "lora_b"}

    def test_apply_lora_wraps_nested_linears(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        wrapped = nn.apply_lora(model, rank=2)
        assert wrapped == 2
        out = model(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 2)

    def test_lora_training_changes_output(self):
        base = nn.Linear(2, 2, rng=np.random.default_rng(0))
        lora = nn.LoRALinear(base, rank=1)
        optimizer = nn.Adam(lora.parameters(), lr=0.1)
        x = np.random.default_rng(1).normal(size=(8, 2))
        target = np.random.default_rng(2).normal(size=(8, 2))
        before = lora(Tensor(x)).data.copy()
        for _ in range(20):
            loss = nn.mse_loss(lora(Tensor(x)), target)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        after = lora(Tensor(x)).data
        assert not np.allclose(before, after)
        # The frozen base projection itself is untouched.
        merged = lora.merged_weight()
        assert merged.shape == (2, 2)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            nn.LoRALinear(nn.Linear(2, 2), rank=0)
