"""Tests for the symbolic expression AST, constructors and evaluation."""

from __future__ import annotations

import pytest

from repro.expr import (
    And,
    Const,
    FALSE,
    Ite,
    Not,
    Or,
    TRUE,
    Var,
    Xor,
    aoi21,
    aoi22,
    expr_from_op,
    full_adder_carry,
    full_adder_sum,
    half_adder_carry,
    half_adder_sum,
    mux2,
    nand,
    nor,
    oai21,
    oai22,
    substitute,
    xnor,
)


class TestBasicNodes:
    def test_var_evaluation(self):
        assert Var("a").evaluate({"a": True}) is True
        assert Var("a").evaluate({"a": False}) is False

    def test_var_missing_assignment_raises(self):
        with pytest.raises(KeyError):
            Var("a").evaluate({})

    def test_var_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Var("")

    def test_const_evaluation(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_not_and_or_xor(self):
        env = {"a": True, "b": False}
        assert Not(Var("a")).evaluate(env) is False
        assert And(Var("a"), Var("b")).evaluate(env) is False
        assert Or(Var("a"), Var("b")).evaluate(env) is True
        assert Xor(Var("a"), Var("b")).evaluate(env) is True

    def test_nary_operators_accept_many_operands(self):
        expr = And(Var("a"), Var("b"), Var("c"))
        assert expr.evaluate({"a": True, "b": True, "c": True}) is True
        assert expr.evaluate({"a": True, "b": True, "c": False}) is False

    def test_nary_requires_two_operands(self):
        with pytest.raises(ValueError):
            And(Var("a"))

    def test_ite(self):
        expr = Ite(Var("s"), Var("a"), Var("b"))
        assert expr.evaluate({"s": True, "a": True, "b": False}) is True
        assert expr.evaluate({"s": False, "a": True, "b": False}) is False

    def test_operator_overloads(self):
        a, b = Var("a"), Var("b")
        env = {"a": True, "b": False}
        assert (~a).evaluate(env) is False
        assert (a & b).evaluate(env) is False
        assert (a | b).evaluate(env) is True
        assert (a ^ b).evaluate(env) is True


class TestIntrospection:
    def test_variables(self):
        expr = Not(Or(And(Var("x"), Var("y")), Var("x")))
        assert expr.variables() == frozenset({"x", "y"})

    def test_depth_and_node_count(self):
        expr = Not(Or(Var("a"), Var("b")))
        assert expr.depth() == 3
        assert expr.num_nodes() == 4
        assert Var("a").depth() == 1

    def test_structural_equality_and_hash(self):
        e1 = And(Var("a"), Not(Var("b")))
        e2 = And(Var("a"), Not(Var("b")))
        e3 = And(Not(Var("b")), Var("a"))
        assert e1 == e2
        assert hash(e1) == hash(e2)
        assert e1 != e3  # structural, not semantic, equality

    def test_iter_nodes_covers_all(self):
        expr = Ite(Var("s"), And(Var("a"), Var("b")), FALSE)
        kinds = [type(node).__name__ for node in expr.iter_nodes()]
        assert kinds.count("Var") == 3
        assert "Ite" in kinds and "And" in kinds and "Const" in kinds


class TestPrinting:
    def test_paper_example_string(self):
        expr = Not(Or(Xor(Var("R1"), Var("R2")), Not(Var("R2"))))
        assert expr.to_string() == "!((R1 ^ R2) | !R2)"

    def test_ite_string(self):
        assert Ite(Var("s"), Var("a"), Var("b")).to_string() == "Ite(s, a, b)"

    def test_const_strings(self):
        assert TRUE.to_string() == "1"
        assert FALSE.to_string() == "0"


class TestCellConstructors:
    @pytest.mark.parametrize(
        "builder, inputs, expected",
        [
            (nand, {"a": True, "b": True}, False),
            (nor, {"a": False, "b": False}, True),
            (xnor, {"a": True, "b": True}, True),
        ],
    )
    def test_inverted_gates(self, builder, inputs, expected):
        expr = builder(Var("a"), Var("b"))
        assert expr.evaluate(inputs) is expected

    def test_mux2_selects_input1_when_high(self):
        expr = mux2(Var("s"), Var("d0"), Var("d1"))
        assert expr.evaluate({"s": True, "d0": False, "d1": True}) is True
        assert expr.evaluate({"s": False, "d0": False, "d1": True}) is False

    def test_aoi_oai(self):
        env = {"a": True, "b": True, "c": False, "d": False}
        assert aoi21(Var("a"), Var("b"), Var("c")).evaluate(env) is False
        assert oai21(Var("a"), Var("b"), Var("c")).evaluate(env) is True
        assert aoi22(Var("a"), Var("b"), Var("c"), Var("d")).evaluate(env) is False
        assert oai22(Var("a"), Var("b"), Var("c"), Var("d")).evaluate(env) is True

    def test_full_adder_truth(self):
        for a in (False, True):
            for b in (False, True):
                for cin in (False, True):
                    env = {"a": a, "b": b, "c": cin}
                    total = int(a) + int(b) + int(cin)
                    assert full_adder_sum(Var("a"), Var("b"), Var("c")).evaluate(env) == bool(total % 2)
                    assert full_adder_carry(Var("a"), Var("b"), Var("c")).evaluate(env) == (total >= 2)

    def test_half_adder_truth(self):
        env = {"a": True, "b": True}
        assert half_adder_sum(Var("a"), Var("b")).evaluate(env) is False
        assert half_adder_carry(Var("a"), Var("b")).evaluate(env) is True


class TestExprFromOp:
    def test_known_operators(self):
        expr = expr_from_op("nand", [Var("x"), Var("y")])
        assert expr.evaluate({"x": True, "y": True}) is False

    def test_sequential_cells_pass_through(self):
        expr = expr_from_op("dff", [Var("d")])
        assert expr == Var("d")

    def test_constants(self):
        assert expr_from_op("const1", []).evaluate({}) is True
        assert expr_from_op("const0", []).evaluate({}) is False

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            expr_from_op("mux2", [Var("a"), Var("b")])

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            expr_from_op("quantum_gate", [Var("a")])


class TestSubstitution:
    def test_substitute_replaces_variables(self):
        expr = And(Var("a"), Not(Var("b")))
        result = substitute(expr, {"a": Or(Var("x"), Var("y"))})
        assert result.variables() == frozenset({"x", "y", "b"})
        assert result.evaluate({"x": True, "y": False, "b": False}) is True

    def test_substitute_inside_ite(self):
        expr = Ite(Var("s"), Var("a"), Var("b"))
        result = substitute(expr, {"s": TRUE})
        assert result.evaluate({"a": True, "b": False}) is True
