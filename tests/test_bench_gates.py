"""Tests for the benchmark CI gates (parity + regression checks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.host import LOADED_THRESHOLD, describe_host, host_snapshot
from repro.bench.throughput import check_regression, run_parity_check
from repro.core import NetTAG, NetTAGConfig
from repro.nn import get_backend
from repro.netlist import extract_register_cones
from repro.rtl import make_controller
from repro.synth import synthesize


class TestCheckRegression:
    BASELINE = {"speedup": {"batched_vs_seed_sequential": 4.0, "batched_vs_api_sequential": 1.5}}

    def test_within_tolerance_passes(self):
        report = {"speedup": {"batched_vs_seed_sequential": 3.2, "batched_vs_api_sequential": 1.2}}
        assert check_regression(report, self.BASELINE, max_regression=0.25) == []

    def test_regression_beyond_tolerance_fails(self):
        report = {"speedup": {"batched_vs_seed_sequential": 2.9, "batched_vs_api_sequential": 1.5}}
        failures = check_regression(report, self.BASELINE, max_regression=0.25)
        assert len(failures) == 1
        assert "batched_vs_seed_sequential" in failures[0]

    def test_missing_metric_is_a_failure(self):
        # Dropping a baseline-tracked metric must not silently disable its gate.
        report = {"speedup": {"batched_vs_seed_sequential": 4.0}}
        failures = check_regression(report, self.BASELINE, max_regression=0.25)
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_improvements_pass(self):
        report = {"speedup": {"batched_vs_seed_sequential": 9.0, "batched_vs_api_sequential": 3.0}}
        assert check_regression(report, self.BASELINE) == []

    def test_empty_baseline_checks_nothing(self):
        assert check_regression({"speedup": {}}, {}) == []


class TestHostSnapshot:
    def test_snapshot_is_json_ready_and_complete(self):
        import json

        snapshot = host_snapshot()
        json.dumps(snapshot)  # must be serialisable into the bench reports
        assert snapshot["cpu_count"] >= 1
        assert set(snapshot["loadavg"]) == {"1m", "5m", "15m"}
        assert isinstance(snapshot["loaded"], bool)

    def test_loaded_flag_follows_threshold(self, monkeypatch):
        import os

        cores = os.cpu_count() or 1
        busy = cores * (LOADED_THRESHOLD + 0.1)
        monkeypatch.setattr(os, "getloadavg", lambda: (busy, busy, busy))
        assert host_snapshot()["loaded"] is True
        monkeypatch.setattr(os, "getloadavg", lambda: (0.0, 0.0, 0.0))
        assert host_snapshot()["loaded"] is False

    def test_describe_host_warns_when_loaded(self):
        quiet = {"cpu_count": 4, "loadavg": {"1m": 0.1, "5m": 0.1, "15m": 0.1}, "loaded": False}
        noisy = dict(quiet, loaded=True)
        assert "LOADED" not in describe_host(quiet)
        assert "LOADED" in describe_host(noisy)
        assert "unreliable" in describe_host(noisy)


class TestRunParityCheck:
    def test_parity_holds_on_a_small_workload(self):
        model = NetTAG(NetTAGConfig.fast(), rng=np.random.default_rng(3))
        netlist = synthesize(make_controller("parity", seed=13, num_states=3)).netlist
        cones = extract_register_cones(netlist)[:4]
        max_diff = run_parity_check(model, cones)
        # 1e-8 under the float64 reference backend; float32 compute holds the
        # same algebra to float32 rounding.
        limit = 1e-8 if get_backend().compute_dtype == np.float64 else 1e-5
        assert max_diff <= limit

    def test_parity_failure_raises(self):
        model = NetTAG(NetTAGConfig.fast(), rng=np.random.default_rng(3))
        netlist = synthesize(make_controller("parity2", seed=14, num_states=3)).netlist
        cones = extract_register_cones(netlist)[:2]
        with pytest.raises(AssertionError, match="parity"):
            run_parity_check(model, cones, atol=0.0)  # any float noise trips it
