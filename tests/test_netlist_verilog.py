"""Tests for the structural Verilog writer/reader (repro.netlist.verilog)."""

from __future__ import annotations

import pytest

from repro.netlist import NetlistError, read_verilog, write_verilog


def assert_same_structure(original, parsed):
    """The parsed netlist must match the original gate-for-gate."""
    assert parsed.num_gates == original.num_gates
    assert set(parsed.gates) == set(original.gates)
    assert set(parsed.primary_inputs) == set(
        net for net in original.primary_inputs if net != original.clock
    )
    assert set(parsed.primary_outputs) == set(original.primary_outputs)
    for name, gate in original.gates.items():
        twin = parsed.gates[name]
        assert twin.cell_name == gate.cell_name
        assert twin.output == gate.output
        assert twin.inputs == gate.inputs


class TestWriter:
    def test_emits_module_header_and_footer(self, tiny_netlist):
        text = write_verilog(tiny_netlist)
        assert text.startswith(f"module {tiny_netlist.name} (")
        assert text.rstrip().endswith("endmodule")

    def test_declares_all_ports(self, tiny_netlist):
        text = write_verilog(tiny_netlist)
        assert "  input a;" in text
        assert "  input b;" in text
        assert "  output n_out;" in text

    def test_sequential_design_declares_clock(self, seq_netlist):
        text = write_verilog(seq_netlist)
        assert f"  input {seq_netlist.clock};" in text
        assert f".CK({seq_netlist.clock})" in text

    def test_every_gate_instantiated_once(self, comb_netlist):
        text = write_verilog(comb_netlist)
        for name in comb_netlist.gates:
            assert f" {name} (" in text

    def test_writes_to_file(self, tiny_netlist, tmp_path):
        path = tmp_path / "tiny.v"
        text = write_verilog(tiny_netlist, path=path)
        assert path.read_text() == text


class TestReader:
    def test_round_trip_tiny(self, tiny_netlist):
        parsed = read_verilog(write_verilog(tiny_netlist), from_string=True)
        assert_same_structure(tiny_netlist, parsed)

    def test_round_trip_combinational(self, comb_netlist):
        parsed = read_verilog(write_verilog(comb_netlist), from_string=True)
        assert_same_structure(comb_netlist, parsed)
        parsed.validate()

    def test_round_trip_sequential(self, seq_netlist):
        parsed = read_verilog(write_verilog(seq_netlist), from_string=True)
        assert_same_structure(seq_netlist, parsed)
        assert parsed.clock == seq_netlist.clock
        assert len(parsed.registers) == len(seq_netlist.registers)

    def test_round_trip_from_file(self, tiny_netlist, tmp_path):
        path = tmp_path / "tiny.v"
        write_verilog(tiny_netlist, path=path)
        parsed = read_verilog(path)
        assert_same_structure(tiny_netlist, parsed)

    def test_comments_are_ignored(self):
        source = """
        // line comment
        module m (a, y); /* block
        comment */
          input a;
          output y;
          INV_X1 u1 ( .A(a), .Z(y) ); // trailing comment
        endmodule
        """
        parsed = read_verilog(source, from_string=True)
        assert parsed.num_gates == 1
        assert parsed.gates["u1"].cell_name == "INV_X1"

    def test_multibit_style_names_and_spacing(self):
        source = (
            "module spaced ( a , b , y );\n"
            " input a; input b; output y;\n"
            " wire t;\n"
            " NAND2_X1   g0(.A( a ),.B( b ),.Z( t ));\n"
            " INV_X1 g1 ( .A(t), .Z(y) );\n"
            "endmodule\n"
        )
        parsed = read_verilog(source, from_string=True)
        assert parsed.num_gates == 2
        assert parsed.gates["g0"].inputs == {"A": "a", "B": "b"}

    def test_missing_module_raises(self):
        with pytest.raises(NetlistError):
            read_verilog("wire a;", from_string=True)

    def test_missing_endmodule_raises(self):
        with pytest.raises(NetlistError):
            read_verilog("module m (a); input a;", from_string=True)

    def test_unknown_cell_raises(self):
        source = "module m (a, y); input a; output y; FOO_X9 u1 ( .A(a), .Z(y) ); endmodule"
        with pytest.raises(NetlistError):
            read_verilog(source, from_string=True)

    def test_missing_output_pin_raises(self):
        source = "module m (a, y); input a; output y; INV_X1 u1 ( .A(a) ); endmodule"
        with pytest.raises(NetlistError):
            read_verilog(source, from_string=True)

    def test_clock_detection(self):
        source = (
            "module m (clk, d, q); input clk; input d; output q;\n"
            "  DFF_X1 r0 ( .D(d), .Q(q), .CK(clk) );\nendmodule"
        )
        parsed = read_verilog(source, from_string=True)
        assert parsed.clock == "clk"
        assert "clk" not in parsed.primary_inputs
        assert parsed.is_sequential_design()
