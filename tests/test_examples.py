"""Every example script runs to completion — examples cannot rot.

Each ``examples/*.py`` executes in a subprocess with ``PYTHONPATH=src`` and
the scaled-down ``REPRO_EXAMPLES_FAST`` profile (honoured by the heavier
scripts), exactly like the CI tier-1 matrix runs them.  The parametrisation
globs the directory, so a new example is covered the day it lands.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))

#: Output every example must end up printing somewhere (a cheap liveness
#: check that the script did its demo, not just imported cleanly).
EXPECTED_MARKER = {
    "quickstart.py": "top-3 circuits",
    "custom_netlist.py": "Verilog round-trip OK",
    "crossmodal_retrieval.py": "ready to serve",
    "resume_pretraining.py": "cache",
    "arithmetic_reasoning_demo.py": "module",
    "reverse_engineering.py": "summary",
    "ppa_estimation.py": "average MAPE",
}


def test_every_example_is_covered():
    assert EXAMPLES, "examples/ directory is empty?"
    assert {path.name for path in EXAMPLES} == set(EXPECTED_MARKER), (
        "examples/ and EXPECTED_MARKER disagree; add a marker for new examples"
    )


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_EXAMPLES_FAST"] = "1"
    result = subprocess.run(
        [sys.executable, str(path)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{path.name} failed (exit {result.returncode})\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    marker = EXPECTED_MARKER[path.name]
    assert marker in result.stdout, (
        f"{path.name} ran but its output lost the expected marker {marker!r}"
    )
