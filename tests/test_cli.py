"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.netlist import write_verilog
from repro.rtl import make_gnnre_design
from repro.synth import synthesize


class TestArgumentParsing:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStatsCommand:
    def test_stats_prints_every_suite_and_total(self, capsys):
        assert main(["stats", "--designs-per-suite", "1"]) == 0
        output = capsys.readouterr().out
        for source in ("ITC99", "OpenCores", "Chipyard", "VexRiscv", "Total"):
            assert source in output


class TestPretrainAndEmbedCommands:
    def test_pretrain_then_embed_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
        ]) == 0
        assert checkpoint.exists()

        netlist = synthesize(make_gnnre_design(1, seed=3)).netlist
        verilog_path = tmp_path / "design.v"
        write_verilog(netlist, path=verilog_path)
        output = tmp_path / "design_embeddings.npz"
        assert main([
            "embed", str(verilog_path), "--checkpoint", str(checkpoint), "--output", str(output),
        ]) == 0
        assert output.exists()

        with np.load(output) as archive:
            assert "graph_embedding" in archive.files
            gate_embeddings = archive["gate_embeddings"]
            gate_names = archive["gate_names"]
        assert gate_embeddings.shape[0] == len(gate_names) == netlist.num_gates
        stdout = capsys.readouterr().out
        assert "checkpoint written" in stdout
        assert "embeddings written" in stdout

    def test_batch_embed_directory(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
        ]) == 0

        netlist_dir = tmp_path / "netlists"
        netlist_dir.mkdir()
        netlists = {}
        for i, seed in ((1, 3), (2, 5)):
            netlist = synthesize(make_gnnre_design(i, seed=seed)).netlist
            write_verilog(netlist, path=netlist_dir / f"design{i}.v")
            netlists[f"design{i}"] = netlist
        output_dir = tmp_path / "embeddings"
        assert main([
            "embed", str(netlist_dir), "--batch",
            "--checkpoint", str(checkpoint), "--output", str(output_dir),
        ]) == 0

        stdout = capsys.readouterr().out
        assert "one batched pass" in stdout
        for stem, netlist in netlists.items():
            with np.load(output_dir / f"{stem}.embeddings.npz") as archive:
                assert archive["gate_embeddings"].shape[0] == netlist.num_gates

    def test_batch_embed_rejects_file_argument(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
        ]) == 0
        lone = tmp_path / "lone.v"
        write_verilog(synthesize(make_gnnre_design(1, seed=3)).netlist, path=lone)
        assert main(["embed", str(lone), "--batch", "--checkpoint", str(checkpoint)]) == 2


class TestPretrainResumeFlags:
    def test_cache_dir_and_resume_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        cache = tmp_path / "cache"
        args = [
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "2",
            "--cache-dir", str(cache), "--checkpoint-every", "2",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "stage preprocess" in first
        assert "(computed)" in first

        # Second run resumes from the final snapshots and hits the artifact
        # cache; the stage report makes both observable.
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert checkpoint.exists()


class TestIndexCommands:
    @pytest.fixture()
    def checkpoint(self, tmp_path, small_model):
        """A saved (untrained) model checkpoint — index commands only encode."""
        path = tmp_path / "model.npz"
        small_model.save(path)
        return path

    @pytest.fixture()
    def netlist_dir(self, tmp_path):
        from repro.rtl import make_controller

        directory = tmp_path / "corpus"
        directory.mkdir()
        for name, seed in (("alpha", 21), ("beta", 22)):
            netlist = synthesize(make_controller(name, seed=seed, num_states=4)).netlist
            write_verilog(netlist, path=directory / f"{name}.v")
        return directory

    def test_build_stats_query_add_round_trip(self, tmp_path, checkpoint, netlist_dir, capsys):
        index_dir = tmp_path / "index"
        assert main([
            "index", "build", str(netlist_dir),
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
            "--shard-size", "8",
        ]) == 0
        assert "indexed" in capsys.readouterr().out
        assert (index_dir / "manifest.json").exists()

        assert main(["index", "stats", "--index", str(index_dir)]) == 0
        stats_out = capsys.readouterr().out
        assert "entries" in stats_out and "kind cone" in stats_out

        query_path = netlist_dir / "alpha.v"
        assert main([
            "index", "query", str(query_path),
            "--checkpoint", str(checkpoint), "--index", str(index_dir), "-k", "2",
        ]) == 0
        query_out = capsys.readouterr().out
        assert "alpha" in query_out  # the indexed circuit retrieves itself

        assert main([
            "index", "query", str(query_path), "--cones",
            "--checkpoint", str(checkpoint), "--index", str(index_dir), "-k", "2",
        ]) == 0
        cones_out = capsys.readouterr().out
        assert "alpha::" in cones_out

        # Appending another netlist grows the index.
        from repro.rtl import make_controller

        extra = synthesize(make_controller("gamma", seed=23, num_states=3)).netlist
        extra_path = tmp_path / "gamma.v"
        write_verilog(extra, path=extra_path)
        assert main([
            "index", "add", str(extra_path),
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["index", "stats", "--index", str(index_dir)]) == 0
        assert "gamma" not in capsys.readouterr().out  # stats prints counts, not keys
        from repro.serve import EmbeddingIndex

        assert "gamma" in EmbeddingIndex.open(index_dir)

    def test_build_refuses_empty_directory(self, tmp_path, checkpoint):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([
            "index", "build", str(empty),
            "--checkpoint", str(checkpoint), "--index", str(tmp_path / "idx"),
        ]) == 2

    def test_build_twice_requires_force(self, tmp_path, checkpoint, netlist_dir, capsys):
        index_dir = tmp_path / "index"
        base = [
            "index", "build", str(netlist_dir),
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
        ]
        assert main(base) == 0
        with pytest.raises(FileExistsError):
            main(base)
        assert main(base + ["--force"]) == 0
