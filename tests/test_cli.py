"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.netlist import write_verilog
from repro.rtl import make_gnnre_design
from repro.synth import synthesize


class TestArgumentParsing:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStatsCommand:
    def test_stats_prints_every_suite_and_total(self, capsys):
        assert main(["stats", "--designs-per-suite", "1"]) == 0
        output = capsys.readouterr().out
        for source in ("ITC99", "OpenCores", "Chipyard", "VexRiscv", "Total"):
            assert source in output


class TestPretrainAndEmbedCommands:
    def test_pretrain_then_embed_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
        ]) == 0
        assert checkpoint.exists()

        netlist = synthesize(make_gnnre_design(1, seed=3)).netlist
        verilog_path = tmp_path / "design.v"
        write_verilog(netlist, path=verilog_path)
        output = tmp_path / "design_embeddings.npz"
        assert main([
            "embed", str(verilog_path), "--checkpoint", str(checkpoint), "--output", str(output),
        ]) == 0
        assert output.exists()

        with np.load(output) as archive:
            assert "graph_embedding" in archive.files
            gate_embeddings = archive["gate_embeddings"]
            gate_names = archive["gate_names"]
        assert gate_embeddings.shape[0] == len(gate_names) == netlist.num_gates
        stdout = capsys.readouterr().out
        assert "checkpoint written" in stdout
        assert "embeddings written" in stdout

    def test_pretrain_with_workers_and_shards(self, tmp_path, capsys):
        # The data-parallel engine + sharded corpus reached from the CLI:
        # --num-workers spawns real worker processes, --shard-size streams
        # the training corpora from on-disk shards under --cache-dir.
        checkpoint = tmp_path / "model.npz"
        cache = tmp_path / "cache"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
            "--num-workers", "2", "--world-size", "2", "--shard-size", "16",
            "--cache-dir", str(cache),
        ]) == 0
        assert checkpoint.exists()
        shard_manifests = list((cache / "shards").glob("*.corpus.json"))
        assert shard_manifests, "expected sharded corpora under <cache>/shards"
        assert "checkpoint written" in capsys.readouterr().out

    def test_batch_embed_directory(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
        ]) == 0

        netlist_dir = tmp_path / "netlists"
        netlist_dir.mkdir()
        netlists = {}
        for i, seed in ((1, 3), (2, 5)):
            netlist = synthesize(make_gnnre_design(i, seed=seed)).netlist
            write_verilog(netlist, path=netlist_dir / f"design{i}.v")
            netlists[f"design{i}"] = netlist
        output_dir = tmp_path / "embeddings"
        assert main([
            "embed", str(netlist_dir), "--batch",
            "--checkpoint", str(checkpoint), "--output", str(output_dir),
        ]) == 0

        stdout = capsys.readouterr().out
        assert "one batched pass" in stdout
        for stem, netlist in netlists.items():
            with np.load(output_dir / f"{stem}.embeddings.npz") as archive:
                assert archive["gate_embeddings"].shape[0] == netlist.num_gates

    def test_batch_embed_rejects_file_argument(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
        ]) == 0
        lone = tmp_path / "lone.v"
        write_verilog(synthesize(make_gnnre_design(1, seed=3)).netlist, path=lone)
        assert main(["embed", str(lone), "--batch", "--checkpoint", str(checkpoint)]) == 2


class TestPretrainResumeFlags:
    def test_cache_dir_and_resume_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        cache = tmp_path / "cache"
        args = [
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "2",
            "--cache-dir", str(cache), "--checkpoint-every", "2",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "stage preprocess" in first
        assert "(computed)" in first

        # Second run resumes from the final snapshots and hits the artifact
        # cache; the stage report makes both observable.
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert checkpoint.exists()


class TestIndexCommands:
    @pytest.fixture()
    def checkpoint(self, tmp_path, small_model):
        """A saved (untrained) model checkpoint — index commands only encode."""
        path = tmp_path / "model.npz"
        small_model.save(path)
        return path

    @pytest.fixture()
    def netlist_dir(self, tmp_path):
        from repro.rtl import make_controller

        directory = tmp_path / "corpus"
        directory.mkdir()
        for name, seed in (("alpha", 21), ("beta", 22)):
            netlist = synthesize(make_controller(name, seed=seed, num_states=4)).netlist
            write_verilog(netlist, path=directory / f"{name}.v")
        return directory

    def test_build_stats_query_add_round_trip(self, tmp_path, checkpoint, netlist_dir, capsys):
        index_dir = tmp_path / "index"
        assert main([
            "index", "build", str(netlist_dir),
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
            "--shard-size", "8",
        ]) == 0
        assert "indexed" in capsys.readouterr().out
        assert (index_dir / "manifest.json").exists()

        assert main(["index", "stats", "--index", str(index_dir)]) == 0
        stats_out = capsys.readouterr().out
        assert "entries" in stats_out and "kind cone" in stats_out

        query_path = netlist_dir / "alpha.v"
        assert main([
            "index", "query", str(query_path),
            "--checkpoint", str(checkpoint), "--index", str(index_dir), "-k", "2",
        ]) == 0
        query_out = capsys.readouterr().out
        assert "alpha" in query_out  # the indexed circuit retrieves itself

        assert main([
            "index", "query", str(query_path), "--cones",
            "--checkpoint", str(checkpoint), "--index", str(index_dir), "-k", "2",
        ]) == 0
        cones_out = capsys.readouterr().out
        assert "alpha::" in cones_out

        # Appending another netlist grows the index.
        from repro.rtl import make_controller

        extra = synthesize(make_controller("gamma", seed=23, num_states=3)).netlist
        extra_path = tmp_path / "gamma.v"
        write_verilog(extra, path=extra_path)
        assert main([
            "index", "add", str(extra_path),
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["index", "stats", "--index", str(index_dir)]) == 0
        assert "gamma" not in capsys.readouterr().out  # stats prints counts, not keys
        from repro.serve import EmbeddingIndex

        assert "gamma" in EmbeddingIndex.open(index_dir)

    def test_query_searcher_algorithms_and_compact(
        self, tmp_path, checkpoint, netlist_dir, capsys
    ):
        index_dir = tmp_path / "index"
        assert main([
            "index", "build", str(netlist_dir),
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
            "--shard-size", "8",
        ]) == 0
        capsys.readouterr()

        query_path = netlist_dir / "alpha.v"
        outputs = {}
        for searcher in ("exact", "ivf", "hnsw"):
            assert main([
                "index", "query", str(query_path), "--cones",
                "--searcher", searcher,
                "--checkpoint", str(checkpoint), "--index", str(index_dir),
                "-k", "2",
            ]) == 0
            outputs[searcher] = capsys.readouterr().out
            assert "alpha::" in outputs[searcher]
        # --approx stays an alias for the IVF searcher.
        assert main([
            "index", "query", str(query_path), "--cones", "--approx",
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
            "-k", "2",
        ]) == 0
        assert capsys.readouterr().out == outputs["ivf"]

        from repro.serve import EmbeddingIndex

        index = EmbeddingIndex.open(index_dir)
        index.remove(index.keys()[:1])
        index.save()
        assert main(["index", "compact", "--index", str(index_dir)]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "tombstones dropped" in out
        assert not EmbeddingIndex.open(index_dir).stats()["tombstones"]

    def test_build_refuses_empty_directory(self, tmp_path, checkpoint):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([
            "index", "build", str(empty),
            "--checkpoint", str(checkpoint), "--index", str(tmp_path / "idx"),
        ]) == 2

    def test_build_twice_requires_force(self, tmp_path, checkpoint, netlist_dir, capsys):
        index_dir = tmp_path / "index"
        base = [
            "index", "build", str(netlist_dir),
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
        ]
        assert main(base) == 0
        with pytest.raises(FileExistsError):
            main(base)
        assert main(base + ["--force"]) == 0


class TestCrossModalCommands:
    @pytest.fixture()
    def checkpoint(self, tmp_path, small_model):
        path = tmp_path / "model.npz"
        small_model.save(path)
        return path

    def test_synthetic_build_then_query_every_direction(self, tmp_path, checkpoint, capsys):
        index_dir = tmp_path / "mm-index"
        assert main([
            "index", "build", "--synthetic", "1",
            "--checkpoint", str(checkpoint), "--index", str(index_dir), "--force",
        ]) == 0
        build_out = capsys.readouterr().out
        assert "cross-modal index" in build_out
        for kind in ("circuit=", "cone=", "rtl=", "layout="):
            assert kind in build_out

        # An RTL snippet retrieves netlist cones...
        from repro.rtl import make_controller, render_register_cone

        module = make_controller("probe", seed=77, num_states=4, data_width=4)
        rtl_path = tmp_path / "probe.rtl"
        rtl_path.write_text(render_register_cone(module, module.registers[0].name))
        assert main([
            "index", "query", str(rtl_path), "--from", "rtl", "--to", "cone",
            "--checkpoint", str(checkpoint), "--index", str(index_dir), "-k", "3",
        ]) == 0
        rtl_out = capsys.readouterr().out
        assert "top-3 cone entries (from rtl)" in rtl_out
        assert rtl_out.count("+0.") + rtl_out.count("-0.") + rtl_out.count("+1.") >= 3

        # ...and a netlist's layout retrieves the RTL namespace.
        netlist = synthesize(module).netlist
        netlist_path = tmp_path / "probe.v"
        write_verilog(netlist, path=netlist_path)
        assert main([
            "index", "query", str(netlist_path), "--from", "layout", "--to", "rtl",
            "--checkpoint", str(checkpoint), "--index", str(index_dir), "-k", "2",
        ]) == 0
        assert "rtl entries (from layout)" in capsys.readouterr().out

        assert main(["index", "stats", "--index", str(index_dir)]) == 0
        stats_out = capsys.readouterr().out
        assert "kind rtl" in stats_out and "kind layout" in stats_out

    def test_directory_build_supports_layout_but_not_rtl(self, tmp_path, checkpoint, capsys):
        from repro.rtl import make_controller

        directory = tmp_path / "corpus"
        directory.mkdir()
        netlist = synthesize(make_controller("delta", seed=31, num_states=3)).netlist
        write_verilog(netlist, path=directory / "delta.v")

        # rtl rows need RTL sources the .v corpus cannot provide.
        assert main([
            "index", "build", str(directory), "--modalities", "cone,rtl",
            "--checkpoint", str(checkpoint), "--index", str(tmp_path / "idx-a"),
        ]) == 2
        assert "rtl rows need RTL sources" in capsys.readouterr().err

        # layout rows are derived from the netlists themselves.
        index_dir = tmp_path / "idx-b"
        assert main([
            "index", "build", str(directory), "--modalities", "circuit,cone,layout",
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
        ]) == 0
        assert "layout=" in capsys.readouterr().out
        assert main([
            "index", "query", str(directory / "delta.v"), "--from", "cone", "--to", "layout",
            "--checkpoint", str(checkpoint), "--index", str(index_dir), "-k", "2",
        ]) == 0
        assert "layout entries (from cone)" in capsys.readouterr().out

        # An rtl query against this rtl-less sidecar fails with a friendly
        # message instead of a traceback from inside the scheduler.
        rtl_path = tmp_path / "probe.rtl"
        rtl_path.write_text("assign x = a & b;")
        assert main([
            "index", "query", str(rtl_path), "--from", "rtl",
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
        ]) == 2
        assert "built without the 'rtl' modality" in capsys.readouterr().err

        # A directory corpus plus --synthetic is ambiguous and refused.
        assert main([
            "index", "build", str(directory), "--synthetic", "1",
            "--checkpoint", str(checkpoint), "--index", str(tmp_path / "idx-c"),
        ]) == 2
        assert "not both" in capsys.readouterr().err

    def test_unknown_modality_fails(self, tmp_path, checkpoint, capsys):
        assert main([
            "index", "build", "--synthetic", "1", "--modalities", "cone,hologram",
            "--checkpoint", str(checkpoint), "--index", str(tmp_path / "idx"),
        ]) == 2
        assert "unknown modalities" in capsys.readouterr().err

    def test_cross_modal_query_without_sidecar_fails(self, tmp_path, checkpoint, capsys):
        from repro.rtl import make_controller

        directory = tmp_path / "corpus"
        directory.mkdir()
        netlist = synthesize(make_controller("plain", seed=41, num_states=3)).netlist
        write_verilog(netlist, path=directory / "plain.v")
        index_dir = tmp_path / "plain-idx"
        assert main([
            "index", "build", str(directory),
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
        ]) == 0
        capsys.readouterr()
        rtl_path = tmp_path / "q.rtl"
        rtl_path.write_text("assign x = a & b;")
        assert main([
            "index", "query", str(rtl_path), "--from", "rtl",
            "--checkpoint", str(checkpoint), "--index", str(index_dir),
        ]) == 2
        assert "no multimodal sidecar" in capsys.readouterr().err

    def test_build_without_corpus_source_fails(self, tmp_path, checkpoint, capsys):
        assert main([
            "index", "build",
            "--checkpoint", str(checkpoint), "--index", str(tmp_path / "idx"),
        ]) == 2
        assert "netlist directory" in capsys.readouterr().err


class TestIndexReplicaCommands:
    """`index fit-hnsw` and `index serve` run without a model checkpoint."""

    @pytest.fixture()
    def built_index(self, tmp_path):
        from repro.serve import EmbeddingIndex

        directory = tmp_path / "ix"
        rng = np.random.default_rng(0)
        index = EmbeddingIndex.create(directory, dim=12, shard_size=16)
        kinds = ["cone" if i % 2 else "circuit" for i in range(48)]
        index.add([f"row{i:03d}" for i in range(48)],
                  rng.normal(size=(48, 12)), kinds=kinds)
        index.save()
        return directory

    def test_fit_hnsw_writes_loadable_sidecar(self, built_index, capsys):
        from repro.serve import HNSWSearcher, hnsw_sidecar_path

        assert main([
            "index", "fit-hnsw", "--index", str(built_index),
            "--kind", "cone", "--M", "8",
            "--ef-construction", "32", "--ef-search", "24",
        ]) == 0
        output = capsys.readouterr().out
        sidecar = hnsw_sidecar_path(built_index, "cone")
        assert sidecar.exists()
        assert str(sidecar) in output
        loaded = HNSWSearcher.load(sidecar)
        assert loaded.structure_digest() in output
        assert loaded.kind == "cone"

    def test_serve_probes_round_robin_and_reports_stats(self, built_index, capsys):
        assert main([
            "index", "serve", "--index", str(built_index),
            "--replicas", "2", "--probe", "2", "-k", "3",
        ]) == 0
        output = capsys.readouterr().out
        assert "replica 0: generation" in output
        assert "replica 1: generation" in output
        assert "served 2 probes across 2 replica processes" in output

    def test_serve_rejects_empty_index(self, tmp_path, capsys):
        from repro.serve import EmbeddingIndex

        directory = tmp_path / "empty"
        EmbeddingIndex.create(directory, dim=8).save()
        assert main(["index", "serve", "--index", str(directory)]) == 2
        assert "no live rows" in capsys.readouterr().err
