"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.netlist import write_verilog
from repro.rtl import make_gnnre_design
from repro.synth import synthesize


class TestArgumentParsing:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStatsCommand:
    def test_stats_prints_every_suite_and_total(self, capsys):
        assert main(["stats", "--designs-per-suite", "1"]) == 0
        output = capsys.readouterr().out
        for source in ("ITC99", "OpenCores", "Chipyard", "VexRiscv", "Total"):
            assert source in output


class TestPretrainAndEmbedCommands:
    def test_pretrain_then_embed_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
        ]) == 0
        assert checkpoint.exists()

        netlist = synthesize(make_gnnre_design(1, seed=3)).netlist
        verilog_path = tmp_path / "design.v"
        write_verilog(netlist, path=verilog_path)
        output = tmp_path / "design_embeddings.npz"
        assert main([
            "embed", str(verilog_path), "--checkpoint", str(checkpoint), "--output", str(output),
        ]) == 0
        assert output.exists()

        with np.load(output) as archive:
            assert "graph_embedding" in archive.files
            gate_embeddings = archive["gate_embeddings"]
            gate_names = archive["gate_names"]
        assert gate_embeddings.shape[0] == len(gate_names) == netlist.num_gates
        stdout = capsys.readouterr().out
        assert "checkpoint written" in stdout
        assert "embeddings written" in stdout

    def test_batch_embed_directory(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
        ]) == 0

        netlist_dir = tmp_path / "netlists"
        netlist_dir.mkdir()
        netlists = {}
        for i, seed in ((1, 3), (2, 5)):
            netlist = synthesize(make_gnnre_design(i, seed=seed)).netlist
            write_verilog(netlist, path=netlist_dir / f"design{i}.v")
            netlists[f"design{i}"] = netlist
        output_dir = tmp_path / "embeddings"
        assert main([
            "embed", str(netlist_dir), "--batch",
            "--checkpoint", str(checkpoint), "--output", str(output_dir),
        ]) == 0

        stdout = capsys.readouterr().out
        assert "one batched pass" in stdout
        for stem, netlist in netlists.items():
            with np.load(output_dir / f"{stem}.embeddings.npz") as archive:
                assert archive["gate_embeddings"].shape[0] == netlist.num_gates

    def test_batch_embed_rejects_file_argument(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "1",
        ]) == 0
        lone = tmp_path / "lone.v"
        write_verilog(synthesize(make_gnnre_design(1, seed=3)).netlist, path=lone)
        assert main(["embed", str(lone), "--batch", "--checkpoint", str(checkpoint)]) == 2


class TestPretrainResumeFlags:
    def test_cache_dir_and_resume_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        cache = tmp_path / "cache"
        args = [
            "pretrain", "--output", str(checkpoint), "--preset", "fast",
            "--designs-per-suite", "1", "--seed", "2",
            "--cache-dir", str(cache), "--checkpoint-every", "2",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "stage preprocess" in first
        assert "(computed)" in first

        # Second run resumes from the final snapshots and hits the artifact
        # cache; the stage report makes both observable.
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert checkpoint.exists()
