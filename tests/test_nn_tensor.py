"""Tests for the autograd engine: gradients are checked against finite differences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import Tensor


@pytest.fixture(scope="module", autouse=True)
def _reference_backend():
    """This module states the engine's float64 reference semantics (central
    differences at eps=1e-6 and 1e-8-level path comparisons are meaningless
    in float32); the fast backend has its own suite in
    test_backend_parity.py."""
    with nn.use_backend("reference"):
        yield


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x.copy())
        flat[i] = original - eps
        minus = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-4):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    tensor = Tensor(data.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    analytic = tensor.grad
    numeric = numerical_gradient(lambda arr: float(build_loss(Tensor(arr)).data), data.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda t: ((t * 3.0 + 1.5) * t).sum(), (4, 3))

    def test_sub_div(self):
        check_gradient(lambda t: ((t - 2.0) / (t * t + 5.0)).sum(), (3, 3))

    def test_pow_sqrt(self):
        check_gradient(lambda t: ((t * t + 1.0).sqrt()).sum(), (5,))

    def test_exp_log(self):
        check_gradient(lambda t: ((t.exp() + 1.0).log()).sum(), (4,))

    def test_relu(self):
        check_gradient(lambda t: (t.relu() * t).sum(), (6,), seed=3)

    def test_tanh_sigmoid(self):
        check_gradient(lambda t: (t.tanh() + t.sigmoid()).sum(), (4, 2))

    def test_gelu(self):
        check_gradient(lambda t: t.gelu().sum(), (5,))

    def test_broadcast_add(self):
        rng = np.random.default_rng(0)
        bias_data = rng.normal(size=(3,))
        check_gradient(lambda t: (t + Tensor(bias_data)).sum(), (4, 3))

    def test_broadcast_grad_to_smaller_operand(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))


class TestReductionsAndShapes:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) * Tensor(np.arange(3.0))).sum(), (4, 3))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2.0).sum(), (3, 5))

    def test_max(self):
        check_gradient(lambda t: t.max(axis=1).sum(), (4, 6), seed=11)

    def test_reshape_transpose(self):
        check_gradient(lambda t: (t.reshape(6, 2).transpose() * 2.0).sum(), (3, 4))

    def test_getitem(self):
        check_gradient(lambda t: (t[1:3] * 3.0).sum(), (5, 2))

    def test_getitem_fancy_index(self):
        idx = np.array([0, 2, 2])
        check_gradient(lambda t: (t[idx] * 2.0).sum(), (4, 3))


class TestMatmulGradients:
    def test_matmul_2d(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(3, 2))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), (4, 3))

    def test_matmul_grad_wrt_right(self):
        rng = np.random.default_rng(2)
        left = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(left) @ t).sum(), (3, 2))

    def test_matmul_batched(self):
        rng = np.random.default_rng(3)
        other = rng.normal(size=(5, 4))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), (2, 3, 5))

    def test_matmul_vector(self):
        rng = np.random.default_rng(4)
        weight = rng.normal(size=(3, 2))
        check_gradient(lambda t: (t @ Tensor(weight)).sum(), (3,))


class TestSoftmaxFamily:
    def test_softmax_gradient(self):
        weights = np.arange(12.0).reshape(3, 4)
        check_gradient(lambda t: (t.softmax(axis=-1) * Tensor(weights)).sum(), (3, 4))

    def test_log_softmax_gradient(self):
        check_gradient(lambda t: t.log_softmax(axis=-1)[np.arange(3), [0, 1, 2]].sum(), (3, 4))

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(t.softmax(axis=-1).data.sum(axis=-1), np.ones(5))


class TestConcatenateStackEmbedding:
    def test_concatenate_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 3)), requires_grad=True)
        out = nn.concatenate([a, b], axis=0)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((4, 3), 2.0))

    def test_stack_gradient(self):
        tensors = [Tensor(np.full(3, float(i)), requires_grad=True) for i in range(4)]
        out = nn.stack(tensors, axis=0)
        out.sum().backward()
        for t in tensors:
            np.testing.assert_allclose(t.grad, np.ones(3))

    def test_embedding_lookup_accumulates(self):
        table = Tensor(np.eye(4), requires_grad=True)
        out = nn.embedding_lookup(table, np.array([1, 1, 3]))
        out.sum().backward()
        # Row 1 is gathered twice and each lookup has 4 columns of ones.
        np.testing.assert_allclose(table.grad[1], np.full(4, 2.0))
        np.testing.assert_allclose(table.grad[3], np.ones(4))
        np.testing.assert_allclose(table.grad[0], np.zeros(4))

    def test_where_mask(self):
        mask = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = nn.where_mask(mask, a, b)
        out.sum().backward()
        np.testing.assert_allclose(out.data, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestBackwardMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_gradient_accumulation_across_uses(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = (t * 2.0).sum() + (t * 3.0).sum()
        loss.backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_detach_stops_gradients(self):
        t = Tensor(np.ones(3), requires_grad=True)
        detached = t.detach()
        assert not detached.requires_grad

    def test_deep_chain_no_recursion_error(self):
        t = Tensor(np.ones(2), requires_grad=True)
        out = t
        for _ in range(2000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 1.0])


class TestLossFunctions:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 3.0]]), requires_grad=True)
        targets = np.array([0, 1])
        loss = nn.cross_entropy(logits, targets)
        manual = -np.mean(
            [np.log(np.exp(2.0) / (np.exp(2.0) + 1.0)), np.log(np.exp(3.0) / (np.exp(3.0) + 1.0))]
        )
        assert loss.item() == pytest.approx(manual, rel=1e-6)

    def test_cross_entropy_gradient(self):
        targets = np.array([1, 0, 2])
        check_gradient(lambda t: nn.cross_entropy(t, targets), (3, 4))

    def test_mse_loss(self):
        predictions = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        loss = nn.mse_loss(predictions, np.array([1.0, 1.0, 1.0]))
        assert loss.item() == pytest.approx((0.0 + 1.0 + 4.0) / 3.0)

    def test_info_nce_prefers_aligned_pairs(self):
        rng = np.random.default_rng(0)
        aligned = Tensor(np.eye(4) + 0.01 * rng.normal(size=(4, 4)))
        loss_aligned = nn.info_nce(aligned, aligned)
        shuffled = Tensor(np.roll(np.eye(4), 1, axis=0))
        loss_mismatched = nn.info_nce(aligned, shuffled)
        assert loss_aligned.item() < loss_mismatched.item()

    def test_info_nce_requires_batch(self):
        with pytest.raises(ValueError):
            nn.info_nce(Tensor(np.ones((1, 4))), Tensor(np.ones((1, 4))))

    def test_normalize_unit_norm(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        norms = np.linalg.norm(nn.normalize(x).data, axis=-1)
        np.testing.assert_allclose(norms, np.ones(5), atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    scale=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
)
def test_add_mul_gradients_property(rows, cols, scale):
    """Property: d/dx sum(x * s + x) == s + 1 for every element."""
    data = np.random.default_rng(0).normal(size=(rows, cols))
    t = Tensor(data, requires_grad=True)
    (t * scale + t).sum().backward()
    np.testing.assert_allclose(t.grad, np.full((rows, cols), scale + 1.0), atol=1e-9)
