"""A tiny importable TrainTask for the data-parallel engine tests.

Lives in its own module (not a ``test_*`` file) so the spawn-based worker
processes can unpickle it: multiprocessing's spawn start method re-imports
the defining module by name in the child.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.train import SamplingPlan, ShardedCorpus, ShardStreamPlan, TrainTask


class ToyRegressionTask(TrainTask):
    """Least-squares on a fixed random dataset; optionally shard-streamed."""

    name = "toy_regression"

    def __init__(self, n=64, dim=6, seed=0, batch_size=16, num_steps=6,
                 shard_dir=None, shard_size=0):
        rng = np.random.default_rng(seed)
        self.x = rng.normal(size=(n, dim))
        self.y = rng.normal(size=(n, 1))
        self.linear = nn.Linear(dim, 1, rng=rng)
        self.batch_size = batch_size
        self.num_steps = num_steps
        self.shard_dir = shard_dir
        self.shard_size = shard_size
        self.corpus = None

    def setup(self, rng):
        if self.shard_size and self.shard_dir is not None:
            items = [(self.x[i], self.y[i]) for i in range(len(self.x))]
            self.corpus = ShardedCorpus.build_or_open(
                items, self.shard_dir, name="toy", shard_size=self.shard_size
            )
            return ShardStreamPlan(
                len(self.corpus), self.batch_size, shard_size=self.shard_size,
                num_steps=self.num_steps, corpus=self.corpus,
            )
        return SamplingPlan(len(self.x), self.batch_size, self.num_steps)

    def modules(self):
        return {"linear": self.linear}

    def compute_loss(self, indices, rng):
        if self.corpus is not None:
            rows = self.corpus.fetch(indices)
            x = np.stack([row[0] for row in rows])
            y = np.stack([row[1] for row in rows])
        else:
            x, y = self.x[indices], self.y[indices]
        diff = self.linear(Tensor(x)) - Tensor(y)
        loss = (diff * diff).mean()
        return loss, {"mse": loss.item()}


class NoisyToyTask(ToyRegressionTask):
    """Adds rng-drawn noise in compute_loss, exercising the per-slice streams."""

    name = "noisy_toy"

    def compute_loss(self, indices, rng):
        x, y = self.x[indices], self.y[indices]
        noise = rng.normal(scale=1e-3, size=y.shape)
        diff = self.linear(Tensor(x)) - Tensor(y + noise)
        loss = (diff * diff).mean()
        return loss, {"mse": loss.item()}


class FailingTask(ToyRegressionTask):
    """Raises inside compute_loss, for worker error propagation tests."""

    name = "failing_toy"

    def compute_loss(self, indices, rng):
        raise RuntimeError("boom from worker")
