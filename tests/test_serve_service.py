"""Tests for the NetTAGService facade and the pipeline index stage."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import NetTAGConfig, NetTAGPipeline
from repro.netlist import extract_register_cones
from repro.rtl import make_controller
from repro.synth import synthesize
from repro.serve import CIRCUIT_KIND, CONE_KIND, NetTAGService, cone_key, exact_topk


@pytest.fixture(scope="module")
def corpus():
    """Two small sequential designs plus their register cones."""
    net_a = synthesize(make_controller("svc_a", seed=11, num_states=4, data_width=4)).netlist
    net_b = synthesize(make_controller("svc_b", seed=12, num_states=5, data_width=3)).netlist
    return [net_a, net_b]


@pytest.fixture(scope="module")
def served(small_model, corpus, tmp_path_factory):
    """A service over an index holding the corpus (module-scoped: encode once)."""
    directory = tmp_path_factory.mktemp("serve") / "index"
    index = NetTAGService.create_index(small_model, directory, shard_size=16)
    service = NetTAGService(small_model, index=index, max_latency_ms=2.0)
    service.add_netlists(corpus)
    yield service
    service.close()


class TestIndexCreation:
    def test_create_index_stamps_model_fingerprints(self, small_model, tmp_path):
        index = NetTAGService.create_index(small_model, tmp_path / "idx")
        assert index.dim == small_model.index_dim
        assert index.fingerprints["model"] == small_model.fingerprint()
        index.save()
        reopened = NetTAGService.open_index(small_model, tmp_path / "idx")
        assert reopened.fingerprints == index.fingerprints

    def test_fingerprint_is_weight_sensitive(self, small_model, fast_config):
        from repro.core import NetTAG

        other = NetTAG(fast_config, rng=np.random.default_rng(1234))
        assert other.fingerprint() != small_model.fingerprint()

    def test_pad_to_index_dim(self, small_model):
        short = np.ones(small_model.graph_embedding_dim)
        padded = small_model.pad_to_index_dim(short)
        assert padded.shape == (small_model.index_dim,)
        np.testing.assert_array_equal(padded[: len(short)], short)
        assert np.all(padded[len(short):] == 0)
        with pytest.raises(ValueError):
            small_model.pad_to_index_dim(np.ones(small_model.index_dim + 1))


class TestIngest:
    def test_add_netlists_indexes_circuits_and_cones(self, served, corpus):
        index = served.index
        kinds = index.stats()["kinds"]
        assert kinds[CIRCUIT_KIND] == len(corpus)
        total_cones = sum(len(extract_register_cones(n)) for n in corpus)
        assert kinds[CONE_KIND] == total_cones
        for netlist in corpus:
            assert netlist.name in index

    def test_indexed_cone_vector_matches_encode_batch(self, served, corpus, small_model):
        cone = extract_register_cones(corpus[0])[0]
        direct = small_model.encode_batch([cone])[0]
        stored = served.index.get(cone_key(corpus[0].name, cone.register_name))
        np.testing.assert_allclose(
            stored, small_model.pad_to_index_dim(direct).astype(np.float32), atol=1e-6
        )


class TestQueries:
    def test_cone_self_query_scores_unit_similarity(self, served, corpus):
        cone = extract_register_cones(corpus[0])[0]
        hits = served.query_cone(cone, k=3)
        # The cone's own entry scores ~1.0.  It may tie with a structurally
        # identical cone from the sibling design (the near-duplicate
        # phenomenon the index exists to surface), so top-1 is not guaranteed
        # to be the self key — but the self key must be among the unit-score
        # hits.
        by_key = {hit.key: hit.score for hit in hits}
        self_key = cone_key(corpus[0].name, cone.register_name)
        assert hits[0].score == pytest.approx(1.0, abs=1e-5)
        assert by_key[self_key] == pytest.approx(1.0, abs=1e-5)
        assert all(hit.kind == CONE_KIND for hit in hits)

    def test_exclude_self_drops_own_entry(self, served, corpus):
        cone = extract_register_cones(corpus[0])[0]
        hits = served.query_cone(cone, k=3, exclude_self=True, netlist_name=corpus[0].name)
        assert all(hit.key != cone_key(corpus[0].name, cone.register_name) for hit in hits)

    def test_netlist_query_retrieves_itself(self, served, corpus):
        hits = served.query_netlist(corpus[1], k=2)
        assert hits[0].key == corpus[1].name
        assert hits[0].kind == CIRCUIT_KIND
        assert hits[0].score == pytest.approx(1.0, abs=1e-5)

    def test_approximate_query_finds_self(self, served, corpus):
        cone = extract_register_cones(corpus[1])[0]
        served.fit_searcher(num_centroids=4, nprobe=4, kind=CONE_KIND)
        hits = served.query_cone(cone, k=3, approximate=True)
        by_key = {hit.key: hit.score for hit in hits}
        assert by_key[cone_key(corpus[1].name, cone.register_name)] == pytest.approx(
            1.0, abs=1e-5
        )

    def test_near_duplicates_detects_identical_cone_structures(self, served):
        # Controllers of the same generator family share identically-wired
        # register cones across designs; those must surface as near-duplicates.
        pairs = served.near_duplicates(threshold=0.999)
        assert pairs, "expected at least one cross-design duplicate cone"
        for a, b, score in pairs:
            assert a < b
            assert score >= 0.999

    def test_approximate_query_does_not_leak_other_kinds(self, served, corpus):
        # A searcher fitted over BOTH namespaces (kind=None) must not be
        # reused for a cone-scoped query — the service refits kind-scoped.
        served.fit_searcher(num_centroids=4, nprobe=4, kind=None)
        cone = extract_register_cones(corpus[0])[0]
        hits = served.query_cone(cone, k=8, approximate=True)
        assert hits
        assert all(hit.kind == CONE_KIND for hit in hits)

    def test_near_duplicates_ignores_superseded_rows(self, small_model, tmp_path):
        # near_duplicates only needs the index; craft one where a stale
        # superseded row would create a phantom pair.
        from repro.serve import EmbeddingIndex

        rng = np.random.default_rng(0)
        base = rng.normal(size=8)
        other = rng.normal(size=8)
        index = EmbeddingIndex.create(tmp_path / "dup", dim=8)
        index.add(["A", "B"], np.vstack([base, base * 2.0]), kinds=CONE_KIND)  # A ~ B
        index.save()
        index.add(["A"], other[None, :], kinds=CONE_KIND)  # A's live vector moves away
        with NetTAGService(small_model, index=index, max_latency_ms=1.0) as service:
            pairs = service.near_duplicates(threshold=0.98)
        assert ("A", "B") not in [(a, b) for a, b, _ in pairs]

    def test_query_without_index_raises(self, small_model):
        with NetTAGService(small_model, max_latency_ms=1.0) as service:
            with pytest.raises(RuntimeError, match="without an index"):
                service.query_embedding(np.zeros(small_model.index_dim), k=1)


class TestConcurrentServing:
    def test_concurrent_encode_parity_with_direct_path(self, served, corpus, small_model):
        cones = extract_register_cones(corpus[0]) + extract_register_cones(corpus[1])
        small_model.clear_caches()
        direct = small_model.encode_batch(cones)
        results = [None] * len(cones)
        errors = []

        def worker(start, stop):
            try:
                futures = [(i, served.submit_cone(cones[i])) for i in range(start, stop)]
                for i, future in futures:
                    results[i] = future.result(timeout=60.0)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        half = len(cones) // 2
        threads = [
            threading.Thread(target=worker, args=(0, half)),
            threading.Thread(target=worker, args=(half, len(cones))),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for got, want in zip(results, direct):
            np.testing.assert_allclose(got, want, atol=1e-8)
        assert served.stats()["scheduler"]["batches"] >= 1

    def test_mixed_cone_and_netlist_batches(self, served, corpus):
        cone = extract_register_cones(corpus[0])[0]
        cone_future = served.submit_cone(cone)
        netlist_future = served.submit_netlist(corpus[1])
        vector = cone_future.result(timeout=60.0)
        embedding = netlist_future.result(timeout=60.0)
        assert vector.shape == (served.model.index_dim,)
        assert embedding.name == corpus[1].name

    def test_stats_include_all_components(self, served):
        stats = served.stats()
        assert {"scheduler", "expression_cache", "index"} <= set(stats)

    def test_ingest_while_serving_is_safe(self, small_model, corpus, tmp_path):
        """Caller-thread ingest and worker-thread encodes share one lock."""
        index = NetTAGService.create_index(small_model, tmp_path / "race")
        cones = extract_register_cones(corpus[0])
        errors = []
        with NetTAGService(small_model, index=index, max_latency_ms=1.0) as service:

            def ingest():
                try:
                    for _ in range(3):
                        service.add_netlists([corpus[1]])
                except Exception as error:  # pragma: no cover - failure reporting
                    errors.append(error)

            def query():
                try:
                    for cone in cones * 2:
                        service.encode_cone(cone, timeout=60.0)
                except Exception as error:  # pragma: no cover - failure reporting
                    errors.append(error)

            threads = [threading.Thread(target=ingest), threading.Thread(target=query)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert corpus[1].name in index

    def test_user_tuned_searcher_parameters_survive_kind_refit(self, served, corpus):
        # A brand-new kind (no circuit searcher fitted anywhere above)
        # inherits the tuning of the most recently fitted searcher.
        served.fit_searcher(num_centroids=6, nprobe=5, kind=None)
        served.query_netlist(corpus[0], k=2, approximate=True)  # forces a kind fit
        assert served.searcher.kind == CIRCUIT_KIND
        assert served.searcher.num_centroids == 6
        assert served.searcher.nprobe == 5

    def test_per_kind_searcher_tuning_is_independent(self, served, corpus):
        # An explicitly tuned kind keeps its parameters even after another
        # kind is fitted with different ones (no cross-kind clobbering).
        served.fit_searcher(num_centroids=8, nprobe=3, kind=CONE_KIND)
        served.fit_searcher(num_centroids=2, nprobe=1, kind=CIRCUIT_KIND)
        cone = extract_register_cones(corpus[0])[0]
        served.query_cone(cone, k=2, approximate=True)
        assert served._searchers[CONE_KIND].num_centroids == 8
        assert served._searchers[CONE_KIND].nprobe == 3


class TestPipelineIndexStage:
    def test_build_index_is_cached_and_consistent(self, corpus, tmp_path):
        pipeline = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=tmp_path / "cache")
        index = pipeline.build_index(tmp_path / "idx", netlists=corpus)
        entries = len(index)
        assert entries == len(corpus) + sum(
            len(extract_register_cones(n)) for n in corpus
        )
        # Rebuilding with a warm cache must hit the artifact store.
        pipeline.build_index(tmp_path / "idx", netlists=corpus)
        assert pipeline.artifacts.stats()["hits"] >= 1
        # The persisted index answers queries identically after reopening.
        query = index.get(corpus[0].name)
        reopened = NetTAGService.open_index(pipeline.model, tmp_path / "idx")
        before = exact_topk(index, query, k=4)
        after = exact_topk(reopened, query, k=4)
        assert [h.key for h in before[0]] == [h.key for h in after[0]]

    def test_pipeline_serve_round_trip(self, corpus, tmp_path):
        pipeline = NetTAGPipeline(NetTAGConfig.fast())
        pipeline.build_index(tmp_path / "idx", netlists=corpus)
        with pipeline.serve(index=tmp_path / "idx", max_latency_ms=1.0) as service:
            cone = extract_register_cones(corpus[0])[0]
            hits = service.query_cone(cone, k=2)
            assert hits[0].key == cone_key(corpus[0].name, cone.register_name)
