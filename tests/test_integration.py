"""End-to-end integration tests across the full stack.

These follow the paper's data path: RTL -> synthesis -> physical design ->
analysis labels, netlist -> TAG -> NetTAG embeddings -> fine-tuned task heads,
exactly as the benchmark harness does, but at unit-test scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import analyze_area, analyze_power, analyze_timing
from repro.core import evaluate_classification, train_test_split
from repro.netlist import (
    extract_register_cones,
    netlist_to_tag,
    read_verilog,
    to_aig,
    write_verilog,
)
from repro.physical import build_layout_graph, extract_parasitics, physically_optimize, place
from repro.rtl import make_controller
from repro.synth import synthesize
from repro.tasks import TASK1_CLASS_INDEX, anonymize_gate_names


class TestRTLToSignoffFlow:
    """RTL through synthesis, placement, optimisation and sign-off analysis."""

    def test_full_physical_flow_produces_consistent_reports(self):
        module = make_controller("itg_flow", seed=21, num_states=5, data_width=5)
        result = synthesize(module)
        netlist = result.netlist
        netlist.validate()

        placement = place(netlist)
        spef = extract_parasitics(netlist, placement)
        timing = analyze_timing(netlist, clock_period=1.2, spef=spef)
        power = analyze_power(netlist, spef=spef)
        area = analyze_area(netlist, placement)

        # Reports agree with the netlist's composition.
        assert set(timing.endpoint_slack) == {g.name for g in netlist.registers}
        assert area.cell_area == pytest.approx(round(netlist.total_area(), 4))
        assert power.total > 0.0

        # Physical optimisation produces a different, still-valid design whose
        # sign-off metrics move (the Task-4 "w/ opt" label scenario).
        optimized, report = physically_optimize(netlist, placement, fanout_threshold=2)
        optimized.validate()
        opt_placement = place(optimized)
        opt_area = analyze_area(optimized, opt_placement)
        if report.total_changes:
            assert opt_area.total != area.total

    def test_netlist_file_round_trip_preserves_analysis(self, tmp_path):
        module = make_controller("itg_io", seed=5)
        netlist = synthesize(module).netlist
        path = tmp_path / "design.v"
        write_verilog(netlist, path=path)
        reparsed = read_verilog(path)
        assert reparsed.num_gates == netlist.num_gates
        original = analyze_timing(netlist, clock_period=1.0).worst_negative_slack
        round_tripped = analyze_timing(reparsed, clock_period=1.0).worst_negative_slack
        assert round_tripped == pytest.approx(original, abs=1e-9)


class TestNetlistToEmbeddingFlow:
    def test_cones_tags_and_embeddings_are_consistent(self, pretrained_pipeline):
        module = make_controller("itg_embed", seed=9, num_states=4, data_width=4)
        netlist = synthesize(module).netlist
        cones = extract_register_cones(netlist)
        model = pretrained_pipeline.model

        embedding = model.embed_circuit(netlist, cones=cones)
        assert set(embedding.cone_embeddings) == {c.register_name for c in cones}
        assert embedding.gate_embeddings.shape == (
            netlist.num_gates,
            model.gate_embedding_dim,
        )

        # Cone embeddings from the dedicated API have the larger (cone + endpoint) dim.
        cone_embeddings = model.embed_cones(cones)
        for vector in cone_embeddings.values():
            assert vector.shape[0] == model.graph_embedding_dim + model.gate_embedding_dim
            assert np.all(np.isfinite(vector))

    def test_layout_graph_feeds_alignment_encoder(self, pretrained_pipeline):
        if pretrained_pipeline.layout_encoder is None:
            pytest.skip("cross-stage alignment disabled in this configuration")
        module = make_controller("itg_layout", seed=13)
        netlist = synthesize(module).netlist
        layout = build_layout_graph(netlist)
        embedding = pretrained_pipeline.layout_encoder.encode(layout)
        assert embedding.shape == (pretrained_pipeline.layout_encoder.output_dim,)

    def test_gate_function_fine_tuning_beats_chance(self, pretrained_pipeline, comb_netlist):
        """Miniature Task-1: frozen embeddings + MLP head on one design."""
        anonymized, _ = anonymize_gate_names(comb_netlist)
        embeddings, names = pretrained_pipeline.embed_gates(anonymized)
        index = {name: i for i, name in enumerate(names)}
        rows, labels = [], []
        for gate in anonymized.gates.values():
            block = gate.attributes.get("block")
            if isinstance(block, str) and block in TASK1_CLASS_INDEX:
                rows.append(index[gate.name])
                labels.append(TASK1_CLASS_INDEX[block])
        features = embeddings[np.asarray(rows)]
        labels = np.asarray(labels)
        split = train_test_split(len(labels), train_fraction=0.6, seed=0, stratify=labels)
        report, _ = evaluate_classification(features, labels, split, head="mlp")
        chance = max(np.bincount(labels[split.test])) / len(split.test)
        assert report["accuracy"] >= chance  # must at least match the majority class

    def test_aig_lowering_preserves_labels_for_fig5(self, comb_netlist):
        aig = to_aig(comb_netlist)
        tag = netlist_to_tag(aig, k=3)
        assert tag.num_nodes == aig.num_gates
        labelled = [n for n in tag.nodes if n.attributes.get("block") in TASK1_CLASS_INDEX]
        assert labelled
