"""Tests for layers, containers, state dicts and checkpoint serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(5, 3)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False)
        assert not layer.use_bias
        assert len(list(layer.parameters())) == 1

    def test_gradients_flow_to_weights(self):
        layer = nn.Linear(3, 2)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 6)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_out_of_range_raises(self):
        emb = nn.Embedding(4, 2)
        with pytest.raises(IndexError):
            emb(np.array([5]))


class TestLayerNormDropout:
    def test_layer_norm_zero_mean_unit_var(self):
        layer = nn.LayerNorm(8)
        out = layer(Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(5, 8))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(5), atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(5), atol=1e-2)

    def test_dropout_eval_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_dropout_train_zeroes_some(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.train()
        out = layer(Tensor(np.ones((20, 20))))
        assert (out.data == 0).any()
        assert out.data.max() == pytest.approx(2.0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestContainersAndMLP:
    def test_sequential_applies_in_order(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        out = model(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(model) == 3

    def test_mlp_default_shapes(self):
        mlp = nn.MLP(6, 3, hidden_sizes=(16, 16))
        out = mlp(Tensor(np.ones((5, 6))))
        assert out.shape == (5, 3)

    def test_mlp_unknown_activation(self):
        with pytest.raises(ValueError):
            nn.MLP(4, 2, activation="swishish")

    def test_module_list(self):
        layers = nn.ModuleList(nn.Linear(2, 2) for _ in range(3))
        assert len(layers) == 3
        assert isinstance(layers[1], nn.Linear)
        with pytest.raises(RuntimeError):
            layers(Tensor(np.ones((1, 2))))

    def test_num_parameters_counts_everything(self):
        mlp = nn.MLP(4, 2, hidden_sizes=(8,))
        expected = 4 * 8 + 8 + 8 * 2 + 2
        assert mlp.num_parameters() == expected

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert all(not m.training for m in model)
        model.train()
        assert all(m.training for m in model)


class TestStateDict:
    def test_state_dict_round_trip(self):
        source = nn.MLP(4, 2, hidden_sizes=(8,), rng=np.random.default_rng(0))
        target = nn.MLP(4, 2, hidden_sizes=(8,), rng=np.random.default_rng(1))
        target.load_state_dict(source.state_dict())
        x = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_load_missing_key_raises(self):
        model = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_shape_mismatch_raises(self):
        model = nn.Linear(2, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestSerialization:
    def test_save_and_load_checkpoint(self, tmp_path):
        model = nn.MLP(4, 2, hidden_sizes=(8,), rng=np.random.default_rng(0))
        path = nn.save_checkpoint(model, tmp_path / "model.npz", metadata={"epoch": 3})
        clone = nn.MLP(4, 2, hidden_sizes=(8,), rng=np.random.default_rng(1))
        metadata = nn.load_checkpoint(clone, path)
        assert metadata["epoch"] == 3
        # Every checkpoint is stamped with the library version that wrote it.
        import repro

        assert metadata["library_version"] == repro.__version__
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_missing_file(self, tmp_path):
        model = nn.Linear(2, 2)
        with pytest.raises(FileNotFoundError):
            nn.load_checkpoint(model, tmp_path / "missing.npz")
