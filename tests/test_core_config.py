"""Tests for NetTAGConfig: presets, derived configs and ablation switches."""

from __future__ import annotations

import pytest

from repro.core import MODEL_SIZE_PARAMETER_LABELS, NetTAGConfig
from repro.netlist import EXPRESSION_FEATURES, PHYSICAL_FIELDS


class TestValidation:
    def test_default_config_is_valid(self):
        config = NetTAGConfig()
        assert config.model_size in MODEL_SIZE_PARAMETER_LABELS

    def test_unknown_model_size_rejected(self):
        with pytest.raises(ValueError):
            NetTAGConfig(model_size="gargantuan")

    def test_bad_data_fraction_rejected(self):
        with pytest.raises(ValueError):
            NetTAGConfig(data_fraction=0.0)
        with pytest.raises(ValueError):
            NetTAGConfig(data_fraction=1.5)

    def test_bad_expression_hops_rejected(self):
        with pytest.raises(ValueError):
            NetTAGConfig(expression_hops=0)


class TestPresets:
    def test_fast_preset_is_smaller_than_paper(self):
        fast = NetTAGConfig.fast()
        paper = NetTAGConfig.paper()
        assert fast.tagformer_dim <= paper.tagformer_dim
        assert fast.text_encoder_config().approx_parameters < paper.text_encoder_config().approx_parameters

    def test_preset_overrides(self):
        config = NetTAGConfig.fast(model_size="large", seed=11)
        assert config.model_size == "large"
        assert config.seed == 11

    def test_model_size_labels_cover_presets(self):
        assert set(MODEL_SIZE_PARAMETER_LABELS) == {"small", "medium", "large"}


class TestDerivedConfigs:
    def test_tagformer_input_dim_accounts_for_all_channels(self):
        config = NetTAGConfig.fast()
        tf = config.tagformer_config()
        expected = (
            config.text_encoder_config().output_dim
            + len(EXPRESSION_FEATURES)
            + len(PHYSICAL_FIELDS)
        )
        assert tf.input_dim == expected
        assert tf.output_dim == config.output_dim

    def test_tag_pretrain_config_inherits_ablation_switches(self):
        config = NetTAGConfig.fast(use_graph_contrastive=False, use_size_prediction=False)
        pretrain = config.tag_pretrain_config()
        assert pretrain.use_graph_contrastive is False
        assert pretrain.use_size_prediction is False
        assert pretrain.use_masked_gate is True
        assert pretrain.seed == config.seed


class TestAblations:
    @pytest.mark.parametrize(
        "component,field,value",
        [
            ("tag", "use_text_attributes", False),
            ("obj1", "use_expression_contrastive", False),
            ("obj2.1", "use_masked_gate", False),
            ("obj2.2", "use_graph_contrastive", False),
            ("obj2.3", "use_size_prediction", False),
            ("align", "use_cross_stage_alignment", False),
        ],
    )
    def test_every_fig6_ablation_flips_one_switch(self, component, field, value):
        config = NetTAGConfig.fast()
        ablated = config.ablated(component)
        assert getattr(ablated, field) is value
        # The original config is untouched, and only that switch changes.
        assert getattr(config, field) is True
        for other_field in (
            "use_text_attributes",
            "use_expression_contrastive",
            "use_masked_gate",
            "use_graph_contrastive",
            "use_size_prediction",
            "use_cross_stage_alignment",
        ):
            if other_field != field:
                assert getattr(ablated, other_field) == getattr(config, other_field)

    def test_unknown_ablation_rejected(self):
        with pytest.raises(ValueError):
            NetTAGConfig.fast().ablated("obj9")
