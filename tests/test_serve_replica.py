"""Multi-process read replicas (``repro.serve.replica``).

Four contract groups:

* **Cross-process correctness** — a :class:`ReadReplica` serves exact top-k
  from an index a *different process* built, without ever taking the write
  path (no new files appear in the index directory).
* **Generation watch** — a writer's ``add``/``save``/``compact`` cycles are
  observed via the fingerprinted manifest token; in-flight queries finish on
  their pinned snapshot, and a hammer run with concurrent writer churn
  produces zero errors and zero stale-mixed responses (the paired-row
  equality probe below).
* **HNSW load-don't-refit** — a persisted sidecar is loaded bit-identically
  and served without a refit; a stale sidecar falls back to ``sync``; a
  corrupt one is rejected and refit from the index.
* **ReplicaPool** — spawn-safe worker processes round-robin queries, track
  the writer's generation, and surface worker-side failures as
  :class:`ReplicaError`.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    EmbeddingIndex,
    HNSWSearcher,
    ReadReplica,
    ReplicaError,
    ReplicaPool,
    exact_topk,
    hnsw_sidecar_path,
)

DIM = 16
RESULT_TIMEOUT = 30.0


def _build_index(directory, n=96, dim=DIM, seed=0, shard_size=32):
    rng = np.random.default_rng(seed)
    index = EmbeddingIndex.create(directory, dim=dim, shard_size=shard_size)
    kinds = ["cone" if i % 2 else "circuit" for i in range(n)]
    index.add([f"row{i:03d}" for i in range(n)], rng.normal(size=(n, dim)), kinds=kinds)
    index.save()
    return index


_BUILDER_SCRIPT = """
import sys
import numpy as np
from repro.serve import EmbeddingIndex

directory, n, dim, seed = sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
rng = np.random.default_rng(seed)
index = EmbeddingIndex.create(directory, dim=dim, shard_size=32)
kinds = ["cone" if i % 2 else "circuit" for i in range(n)]
index.add([f"row{i:03d}" for i in range(n)], rng.normal(size=(n, dim)), kinds=kinds)
index.save()
print(index.generation, flush=True)
"""


def _build_index_in_subprocess(directory, n=96, dim=DIM, seed=0) -> int:
    env = dict(os.environ)
    root = pathlib.Path(__file__).resolve().parents[1]
    env["PYTHONPATH"] = str(root / "src")
    out = subprocess.run(
        [sys.executable, "-c", _BUILDER_SCRIPT, str(directory), str(n), str(dim), str(seed)],
        env=env,
        capture_output=True,
        timeout=120,
        check=True,
    )
    return int(out.stdout.split()[-1])


class TestCrossProcessServing:
    def test_serves_exact_topk_from_index_built_by_another_process(self, tmp_path):
        directory = tmp_path / "ix"
        writer_generation = _build_index_in_subprocess(directory, n=96, seed=3)

        reference = EmbeddingIndex.open(directory)
        rng = np.random.default_rng(99)
        queries = rng.normal(size=(5, DIM))
        expected = exact_topk(reference, queries, k=4)

        with ReadReplica(directory, watch=False) as replica:
            assert replica.generation == writer_generation
            got = replica.query(queries, k=4)
        for exp_row, got_row in zip(expected, got):
            assert [h.key for h in exp_row] == [h.key for h in got_row]
            assert [h.score for h in exp_row] == [h.score for h in got_row]

    def test_replica_is_read_only(self, tmp_path):
        directory = tmp_path / "ix"
        _build_index(directory, n=32)
        before = sorted(p.name for p in directory.iterdir())
        with ReadReplica(directory, watch=False) as replica:
            replica.query(np.zeros((1, DIM)), k=2)
            # The write surface simply does not exist on a replica.
            assert not hasattr(replica, "add")
            assert not hasattr(replica, "save")
            assert not hasattr(replica, "compact")
        assert sorted(p.name for p in directory.iterdir()) == before

    def test_query_after_close_raises(self, tmp_path):
        directory = tmp_path / "ix"
        _build_index(directory, n=16)
        replica = ReadReplica(directory, watch=False)
        replica.close()
        with pytest.raises(ReplicaError):
            replica.query(np.zeros((1, DIM)), k=1)

    def test_missing_directory_raises_replica_error(self, tmp_path):
        with pytest.raises(ReplicaError):
            ReadReplica(tmp_path / "nowhere", watch=False,
                        open_retries=2, retry_delay=0.01)


class TestGenerationWatch:
    def test_check_for_update_tracks_writer_saves(self, tmp_path):
        directory = tmp_path / "ix"
        writer = _build_index(directory, n=48, seed=1)
        with ReadReplica(directory, watch=False) as replica:
            assert replica.check_for_update() is False

            fresh = np.full(DIM, 0.5)
            writer.add(["fresh"], fresh[None, :], kinds="cone")
            writer.save()

            assert replica.check_for_update() is True
            assert replica.generation == writer.generation
            hits = replica.query(fresh[None, :], k=1, kind="cone")
            assert hits[0][0].key == "fresh"
            # Token unchanged -> no redundant reopen.
            assert replica.check_for_update() is False
            assert replica.stats()["reopens"] == 1

    def test_watcher_thread_reopens_without_explicit_polls(self, tmp_path):
        directory = tmp_path / "ix"
        writer = _build_index(directory, n=48, seed=2)
        with ReadReplica(directory, poll_interval=0.05) as replica:
            writer.add(["late"], np.ones((1, DIM)), kinds="cone")
            writer.save()
            deadline = time.monotonic() + 10.0
            while replica.generation != writer.generation:
                assert time.monotonic() < deadline, "watcher never caught up"
                time.sleep(0.02)
            stats = replica.stats()
            assert stats["watching"] is True
            assert stats["reopens"] >= 1

    def test_hammer_readers_never_see_torn_or_mixed_generations(self, tmp_path):
        """Writer churn (supersede + save + periodic compact) vs reader loops.

        The corpus is orthogonal to the probe axis; the two ``pair::*`` rows
        are rewritten *together* each round with one shared vector, so for
        any single generation their scores against the probe are bit-equal.
        A response mixing segments of two generations would break that
        equality — the classic torn-read symptom.
        """
        directory = tmp_path / "ix"
        rng = np.random.default_rng(7)
        index = EmbeddingIndex.create(directory, dim=DIM, shard_size=16)
        base = rng.normal(size=(40, DIM))
        base[:, 0] = 0.0  # orthogonal to the probe axis
        index.add([f"bg{i}" for i in range(40)], base, kinds="cone")
        pair = np.zeros(DIM)
        pair[0] = 1.0
        index.add(["pair::a", "pair::b"], np.stack([pair, pair]), kinds="cone")
        index.save()

        probe = np.zeros((1, DIM))
        probe[0, 0] = 1.0
        errors: list = []
        stop = threading.Event()

        def _writer() -> None:
            try:
                for round_no in range(12):
                    vec = np.zeros(DIM)
                    vec[0] = 1.0
                    vec[1:] = rng.normal(size=DIM - 1) * 0.05
                    index.add(["pair::a", "pair::b"], np.stack([vec, vec]),
                              kinds="cone")
                    index.save()
                    if round_no % 4 == 3:
                        index.compact()
                        index.save()
                    time.sleep(0.02)
            except Exception as error:  # noqa: BLE001 - surfaced by the test
                errors.append(("writer", repr(error)))
            finally:
                stop.set()

        def _reader(replica: ReadReplica, slot: int) -> None:
            try:
                while not stop.is_set():
                    hits = replica.query(probe, k=4, kind="cone")[0]
                    scores = {hit.key: hit.score for hit in hits}
                    assert "pair::a" in scores and "pair::b" in scores, hits
                    assert scores["pair::a"] == scores["pair::b"], (
                        "stale-mixed response: pair rows from different "
                        f"generations ({scores})"
                    )
            except Exception as error:  # noqa: BLE001 - surfaced by the test
                errors.append((f"reader-{slot}", repr(error)))

        with ReadReplica(directory, poll_interval=0.01) as replica:
            readers = [
                threading.Thread(target=_reader, args=(replica, slot), daemon=True)
                for slot in range(2)
            ]
            writer_thread = threading.Thread(target=_writer, daemon=True)
            for thread in readers:
                thread.start()
            writer_thread.start()
            writer_thread.join(RESULT_TIMEOUT)
            assert not writer_thread.is_alive(), "writer thread hung"
            for thread in readers:
                thread.join(RESULT_TIMEOUT)
                assert not thread.is_alive(), "reader thread hung"
            assert errors == []
            stats = replica.stats()
            assert stats["reopens"] >= 1
            assert stats["generation"] == index.generation


class TestHNSWLoadDontRefit:
    def _fitted_sidecar(self, directory, **params):
        index = EmbeddingIndex.open(directory)
        searcher = HNSWSearcher(M=8, ef_construction=48, ef_search=48, seed=0,
                                **params)
        searcher.fit(index)
        searcher.save(hnsw_sidecar_path(directory, searcher.kind))
        return searcher

    def test_sidecar_is_loaded_bit_identically_and_served(self, tmp_path):
        directory = tmp_path / "ix"
        _build_index(directory, n=80, seed=4)
        fitted = self._fitted_sidecar(directory)

        rng = np.random.default_rng(5)
        queries = rng.normal(size=(4, DIM))
        expected = fitted.search(queries, k=3)

        with ReadReplica(directory, watch=False) as replica:
            got = replica.query(queries, k=3, algorithm="hnsw")
            stats = replica.stats()
        assert stats["hnsw_loaded"] == 1
        assert stats["hnsw_refits"] == 0
        assert stats["hnsw_synced"] == 0
        for exp_row, got_row in zip(expected, got):
            assert [h.key for h in exp_row] == [h.key for h in got_row]
        loaded = HNSWSearcher.load(hnsw_sidecar_path(directory))
        assert loaded.structure_digest() == fitted.structure_digest()

    def test_stale_sidecar_syncs_instead_of_refitting(self, tmp_path):
        directory = tmp_path / "ix"
        writer = _build_index(directory, n=80, seed=4)
        self._fitted_sidecar(directory)

        fresh = np.full(DIM, -0.25)
        writer.add(["fresh"], fresh[None, :], kinds="cone")
        writer.save()

        with ReadReplica(directory, watch=False) as replica:
            hits = replica.query(fresh[None, :], k=1, algorithm="hnsw")
            stats = replica.stats()
        assert hits[0][0].key == "fresh"
        assert stats["hnsw_synced"] == 1
        assert stats["hnsw_refits"] == 0

    def test_corrupt_sidecar_is_rejected_and_refit(self, tmp_path):
        directory = tmp_path / "ix"
        _build_index(directory, n=60, seed=4)
        self._fitted_sidecar(directory)
        hnsw_sidecar_path(directory).write_bytes(b"not an npz graph")

        rng = np.random.default_rng(6)
        with ReadReplica(directory, watch=False,
                         hnsw_params={"M": 8, "seed": 0}) as replica:
            hits = replica.query(rng.normal(size=(2, DIM)), k=3, algorithm="hnsw")
            stats = replica.stats()
        assert all(len(row) == 3 for row in hits)
        assert stats["hnsw_sidecar_rejected"] == 1
        assert stats["hnsw_refits"] == 1


class TestReplicaPool:
    def test_round_robin_parity_failure_surface_and_writer_visibility(self, tmp_path):
        directory = tmp_path / "ix"
        writer = _build_index(directory, n=64, seed=8)
        reference = EmbeddingIndex.open(directory)
        rng = np.random.default_rng(9)
        queries = rng.normal(size=(4, DIM))
        expected = exact_topk(reference, queries, k=3)

        with ReplicaPool(directory, num_replicas=2, poll_interval=0.05) as pool:
            # Parity: each worker answers the same batch bit-equal to a
            # direct exact scan (batch-to-batch — BLAS gemm vs gemv order
            # makes single-row scores differ from batched ones in the last
            # ulp, so the comparison must use the same batch shape).
            for slot in range(2):
                rows = pool.query(queries, k=3, replica=slot)
                for exp_row, got_row in zip(expected, rows):
                    assert [h.key for h in got_row] == [h.key for h in exp_row]
                    assert [h.score for h in got_row] == [h.score for h in exp_row]

            # Worker-side failures come back as ReplicaError, not a hang.
            with pytest.raises(ReplicaError, match="ValueError"):
                pool.query(queries[:1], k=3, algorithm="bogus")

            # Writer visibility: both workers converge on the new generation.
            fresh = np.full(DIM, 0.75)
            writer.add(["fresh"], fresh[None, :], kinds="cone")
            writer.save()
            deadline = time.monotonic() + 15.0
            while True:
                generations = [s["generation"] for s in pool.stats()]
                if all(g == writer.generation for g in generations):
                    break
                assert time.monotonic() < deadline, (
                    f"workers stuck at generations {generations}, "
                    f"writer at {writer.generation}"
                )
                time.sleep(0.05)
            hits = pool.query(fresh[None, :], k=1, kind="cone", replica=1)
            assert hits[0][0].key == "fresh"
        # close() is idempotent.
        pool.close()
