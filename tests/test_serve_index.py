"""Tests for the on-disk sharded embedding index (repro.serve.index)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import EmbeddingIndex, IndexFormatError


def make_vectors(n: int, dim: int = 8, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim))


class TestCreateOpen:
    def test_create_then_open_round_trips_config(self, tmp_path):
        index = EmbeddingIndex.create(
            tmp_path / "idx", dim=8, shard_size=4, fingerprints={"model": "abc"}
        )
        index.add([f"k{i}" for i in range(6)], make_vectors(6), kinds="cone")
        index.save()

        reopened = EmbeddingIndex.open(tmp_path / "idx")
        assert reopened.dim == 8
        assert reopened.shard_size == 4
        assert reopened.fingerprints == {"model": "abc"}
        assert len(reopened) == 6

    def test_create_refuses_to_clobber_without_overwrite(self, tmp_path):
        EmbeddingIndex.create(tmp_path / "idx", dim=4)
        with pytest.raises(FileExistsError):
            EmbeddingIndex.create(tmp_path / "idx", dim=4)
        fresh = EmbeddingIndex.create(tmp_path / "idx", dim=5, overwrite=True)
        assert fresh.dim == 5
        assert len(fresh) == 0

    def test_overwrite_removes_old_shard_payloads(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=2)
        index.add(["a", "b", "c"], make_vectors(3, 4))
        index.save()
        assert any((tmp_path / "idx").glob("shard-*.npy"))
        EmbeddingIndex.create(tmp_path / "idx", dim=4, overwrite=True)
        assert not any((tmp_path / "idx").glob("shard-*.npy"))

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            EmbeddingIndex.open(tmp_path / "nope")

    def test_open_bad_format_version_raises(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4)
        index.save()
        manifest_path = tmp_path / "idx" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError):
            EmbeddingIndex.open(tmp_path / "idx")

    def test_fingerprint_mismatch_warns_but_opens(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, fingerprints={"model": "old"})
        index.save()
        with pytest.warns(UserWarning, match="fingerprint mismatch"):
            reopened = EmbeddingIndex.open(
                tmp_path / "idx", expected_fingerprints={"model": "new"}
            )
        assert reopened.fingerprints["model"] == "old"

    def test_matching_fingerprints_do_not_warn(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, fingerprints={"model": "same"})
        index.save()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            EmbeddingIndex.open(tmp_path / "idx", expected_fingerprints={"model": "same"})


class TestAddGet:
    def test_round_trip_is_exact_in_float32(self, tmp_path):
        vectors = make_vectors(10, 6)
        index = EmbeddingIndex.create(tmp_path / "idx", dim=6, shard_size=4)
        index.add([f"k{i}" for i in range(10)], vectors)
        index.save()
        reopened = EmbeddingIndex.open(tmp_path / "idx")
        for i in range(10):
            got = reopened.get(f"k{i}")
            np.testing.assert_array_equal(got, vectors[i].astype(np.float32).astype(np.float64))

    def test_full_shards_seal_automatically(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=3)
        index.add([f"k{i}" for i in range(7)], make_vectors(7, 4))
        assert index.num_shards == 2          # 2 sealed shards of 3
        assert index.stats()["pending"] == 1  # 1 buffered row
        index.save()
        assert index.num_shards == 3
        assert index.stats()["pending"] == 0

    def test_pending_rows_are_visible_before_flush(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=100)
        vectors = make_vectors(3, 4)
        index.add(["a", "b", "c"], vectors)
        assert "b" in index
        np.testing.assert_allclose(
            index.get("b"), vectors[1].astype(np.float32).astype(np.float64)
        )

    def test_readding_a_key_shadows_the_old_vector(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=2)
        old = make_vectors(1, 4, seed=1)
        new = make_vectors(1, 4, seed=2)
        index.add(["k"], old)
        index.save()
        index.add(["k"], new)
        np.testing.assert_array_equal(
            index.get("k"), new[0].astype(np.float32).astype(np.float64)
        )
        assert len(index) == 1               # one live key
        assert index.stats()["rows"] == 2    # but two physical rows until compact

    def test_dimension_and_length_validation(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4)
        with pytest.raises(ValueError, match="dimension"):
            index.add(["a"], make_vectors(1, 5))
        with pytest.raises(ValueError, match="keys"):
            index.add(["a", "b"], make_vectors(1, 4))
        with pytest.raises(ValueError, match="kinds"):
            index.add(["a", "b"], make_vectors(2, 4), kinds=["x"])


class TestRemoveCompactMerge:
    def test_remove_hides_and_compact_drops(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=3)
        index.add([f"k{i}" for i in range(6)], make_vectors(6, 4))
        index.save()
        assert index.remove(["k1", "k4", "missing"]) == 2
        assert index.get("k1") is None
        assert "k1" not in index
        assert len(index) == 4

        dropped = index.compact()
        assert dropped["rows_after"] == 4
        assert index.stats()["tombstones"] == 0
        # Survivors keep their vectors; reopen sees the compacted layout.
        reopened = EmbeddingIndex.open(tmp_path / "idx")
        assert sorted(reopened.keys()) == ["k0", "k2", "k3", "k5"]

    def test_compact_keeps_latest_duplicate(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=2)
        first = make_vectors(1, 4, seed=3)
        second = make_vectors(1, 4, seed=4)
        index.add(["dup", "other"], np.vstack([first, make_vectors(1, 4, seed=9)]))
        index.save()
        index.add(["dup"], second)
        index.compact()
        assert index.stats()["rows"] == 2
        np.testing.assert_array_equal(
            index.get("dup"), second[0].astype(np.float32).astype(np.float64)
        )

    def test_readd_revives_tombstoned_key(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4)
        index.add(["k"], make_vectors(1, 4))
        index.save()
        index.remove(["k"])
        assert index.get("k") is None
        revived = make_vectors(1, 4, seed=7)
        index.add(["k"], revived)
        np.testing.assert_array_equal(
            index.get("k"), revived[0].astype(np.float32).astype(np.float64)
        )

    def test_merge_appends_live_rows_only(self, tmp_path):
        a = EmbeddingIndex.create(tmp_path / "a", dim=4)
        a.add(["a0", "a1"], make_vectors(2, 4), kinds="circuit")
        b = EmbeddingIndex.create(tmp_path / "b", dim=4)
        b.add(["b0", "b1", "b2"], make_vectors(3, 4, seed=5), kinds="cone")
        b.save()
        b.remove(["b1"])
        assert a.merge(b) == 2
        assert sorted(a.keys()) == ["a0", "a1", "b0", "b2"]
        assert a.stats()["kinds"] == {"circuit": 2, "cone": 2}

    def test_merge_dim_mismatch_raises(self, tmp_path):
        a = EmbeddingIndex.create(tmp_path / "a", dim=4)
        b = EmbeddingIndex.create(tmp_path / "b", dim=5)
        with pytest.raises(ValueError, match="merge"):
            a.merge(b)

    def test_merge_takes_latest_duplicate_vector(self, tmp_path):
        a = EmbeddingIndex.create(tmp_path / "a", dim=4)
        b = EmbeddingIndex.create(tmp_path / "b", dim=4, shard_size=1)
        first = make_vectors(1, 4, seed=1)
        second = make_vectors(1, 4, seed=2)
        b.add(["dup"], first)
        b.save()
        b.add(["dup"], second)
        a.merge(b)
        np.testing.assert_array_equal(
            a.get("dup"), second[0].astype(np.float32).astype(np.float64)
        )


class TestCrashSafety:
    def test_compact_never_unlinks_before_manifest_switch(self, tmp_path):
        """A crash mid-compact must leave a readable index (old or new)."""
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=2)
        vectors = make_vectors(6, 4)
        index.add([f"k{i}" for i in range(6)], vectors)
        index.save()
        index.remove(["k1"])

        # Simulate the crash window: new shards written, manifest NOT yet
        # switched, old payloads NOT yet unlinked.  That state is exactly
        # "old manifest + orphan new files" — reopen must see the old data.
        import repro.serve.index as index_module

        original = index_module.EmbeddingIndex._write_manifest
        calls = {"n": 0}

        def crashing_write(self_index):
            calls["n"] += 1
            raise RuntimeError("simulated crash before manifest switch")

        index_module.EmbeddingIndex._write_manifest = crashing_write
        try:
            with pytest.raises(RuntimeError, match="simulated crash"):
                index.compact()
        finally:
            index_module.EmbeddingIndex._write_manifest = original
        reopened = EmbeddingIndex.open(tmp_path / "idx")
        # The pre-compact manifest still describes a fully readable index
        # (the tombstone for k1 was persisted by remove()).
        assert sorted(reopened.keys()) == ["k0", "k2", "k3", "k4", "k5"]
        for key in reopened.keys():
            assert reopened.get(key) is not None

    def test_orphan_shard_files_are_never_clobbered(self, tmp_path):
        """Shard naming skips files on disk that the manifest doesn't know."""
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=2)
        index.add(["a", "b"], make_vectors(2, 4))
        index.save()
        # Orphan left by a hypothetical crash after payload write.
        orphan = tmp_path / "idx" / "shard-00001.npy"
        orphan.write_bytes(b"garbage")
        index.add(["c", "d"], make_vectors(2, 4, seed=2))
        index.save()
        assert orphan.read_bytes() == b"garbage"  # untouched
        reopened = EmbeddingIndex.open(tmp_path / "idx")
        assert sorted(reopened.keys()) == ["a", "b", "c", "d"]

    def test_compact_removes_orphans_of_its_own_old_layout(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=2)
        index.add([f"k{i}" for i in range(5)], make_vectors(5, 4))
        index.save()
        old_payloads = sorted((tmp_path / "idx").glob("shard-*.npy"))
        index.compact()
        for stale in old_payloads:
            assert not stale.exists()
        reopened = EmbeddingIndex.open(tmp_path / "idx")
        assert len(reopened) == 5


class TestStats:
    def test_stats_report_layout_and_kinds(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=2)
        index.add(["c0"], make_vectors(1, 4), kinds="circuit")
        index.add(["n0", "n1"], make_vectors(2, 4, seed=2), kinds="cone")
        index.save()
        stats = index.stats()
        assert stats["entries"] == 3
        assert stats["dim"] == 4
        assert stats["kinds"] == {"circuit": 1, "cone": 2}
        assert stats["payload_bytes"] > 0

    def test_invalid_construction(self, tmp_path):
        with pytest.raises(ValueError):
            EmbeddingIndex.create(tmp_path / "idx", dim=0)
        with pytest.raises(ValueError):
            EmbeddingIndex.create(tmp_path / "idx2", dim=4, shard_size=0)
