"""Tests for the graph views of a netlist (repro.netlist.graph)."""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.netlist import build_graph_view, gate_order, structural_features, to_networkx


class TestGraphView:
    def test_nodes_in_sorted_gate_order(self, tiny_netlist):
        view = build_graph_view(tiny_netlist)
        assert view.node_names == sorted(tiny_netlist.gates)
        assert view.num_nodes == tiny_netlist.num_gates

    def test_edges_follow_signal_flow(self, tiny_netlist):
        view = build_graph_view(tiny_netlist)
        index = view.name_to_index
        pairs = set(zip(view.edge_index[0].tolist(), view.edge_index[1].tolist()))
        assert (index["u_xor"], index["u_or"]) in pairs
        assert (index["u_inv"], index["u_or"]) in pairs
        assert (index["u_out"], index["r_state"]) in pairs

    def test_edge_count_matches_driven_pins(self, comb_netlist):
        view = build_graph_view(comb_netlist)
        expected = sum(
            1
            for gate in comb_netlist.gates.values()
            for net in gate.input_nets
            if comb_netlist.driver(net) is not None
        )
        assert view.num_edges == expected

    def test_adjacency_is_symmetric_and_normalised(self, comb_netlist):
        view = build_graph_view(comb_netlist)
        adjacency = view.adjacency
        assert adjacency.shape == (view.num_nodes, view.num_nodes)
        assert np.allclose(adjacency, adjacency.T)
        # Self-loops plus D^-1/2 A D^-1/2 keeps every row's spectral radius <= 1.
        eigenvalues = np.linalg.eigvalsh(adjacency)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_adjacency_without_self_loops(self, tiny_netlist):
        view = build_graph_view(tiny_netlist, add_self_loops=False)
        assert np.all(np.diag(view.adjacency) == 0.0)

    def test_name_to_index_round_trip(self, tiny_netlist):
        view = build_graph_view(tiny_netlist)
        for i, name in enumerate(view.node_names):
            assert view.name_to_index[name] == i


class TestNetworkxView:
    def test_graph_is_directed_and_complete(self, tiny_netlist):
        graph = to_networkx(tiny_netlist)
        assert isinstance(graph, nx.DiGraph)
        assert set(graph.nodes) == set(tiny_netlist.gates)
        assert graph.has_edge("u_xor", "u_or")
        assert not graph.has_edge("u_or", "u_xor")

    def test_node_attributes_present(self, tiny_netlist):
        graph = to_networkx(tiny_netlist)
        node = graph.nodes["r_state"]
        assert node["cell_type"] == "DFF"
        assert node["is_register"] is True
        assert node["role"] == "state"

    def test_edge_net_annotation(self, tiny_netlist):
        graph = to_networkx(tiny_netlist)
        assert graph.edges["u_xor", "u_or"]["net"] == "n_xor"

    def test_combinational_subgraph_is_acyclic(self, seq_netlist):
        graph = to_networkx(seq_netlist)
        comb = graph.subgraph(
            [g.name for g in seq_netlist.combinational_gates]
        )
        assert nx.is_directed_acyclic_graph(comb)


class TestStructuralFeatures:
    def test_shape_and_one_hot(self, comb_netlist):
        features = structural_features(comb_netlist)
        num_types = len(comb_netlist.library.type_index())
        assert features.shape == (comb_netlist.num_gates, num_types + 4)
        # Exactly one cell-type slot is hot per gate.
        assert np.all(features[:, :num_types].sum(axis=1) == 1.0)

    def test_register_flag_and_depth(self, seq_netlist):
        features = structural_features(seq_netlist)
        num_types = len(seq_netlist.library.type_index())
        gates = gate_order(seq_netlist)
        for i, gate in enumerate(gates):
            is_reg = seq_netlist.is_register(gate)
            assert features[i, num_types + 2] == (1.0 if is_reg else 0.0)
            if is_reg:
                assert features[i, num_types + 3] == 0.0

    def test_fanin_counts_match(self, tiny_netlist):
        features = structural_features(tiny_netlist)
        num_types = len(tiny_netlist.library.type_index())
        gates = gate_order(tiny_netlist)
        for i, gate in enumerate(gates):
            assert features[i, num_types + 0] == len(gate.inputs)

    def test_depth_increases_along_paths(self, tiny_netlist):
        features = structural_features(tiny_netlist)
        num_types = len(tiny_netlist.library.type_index())
        names = [g.name for g in gate_order(tiny_netlist)]
        depth = {name: features[i, num_types + 3] for i, name in enumerate(names)}
        assert depth["u_xor"] < depth["u_or"] < depth["u_out"]
