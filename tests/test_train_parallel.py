"""Tests for the data-parallel training engine (repro.train.parallel).

The load-bearing contract: the slice decomposition, per-slice RNG streams and
pairwise reduction tree depend only on ``world_size``, so any worker count up
to ``world_size`` — in-process or spawned — trains bit-identically, and an
interrupted run resumes bit-identically even across different worker counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from _parallel_task import FailingTask, NoisyToyTask, ToyRegressionTask
from repro.train import (
    Trainer,
    TrainerConfig,
    WorkerError,
    WorkerPool,
    pairwise_sum,
    partition_batch,
    reduce_slices,
    run_slices,
    slice_rng,
)


def _train(task, num_workers, world_size=4, seed=3, **config_overrides):
    config = TrainerConfig(
        num_workers=num_workers, world_size=world_size, seed=seed, **config_overrides
    )
    result = Trainer(task, config).run()
    params = {name: p.data.copy() for name, p in task.linear.named_parameters()}
    return result, params


def _assert_identical(a, b):
    result_a, params_a = a
    result_b, params_b = b
    assert result_a.losses == result_b.losses
    assert result_a.learning_rates == result_b.learning_rates
    assert set(params_a) == set(params_b)
    for name in params_a:
        np.testing.assert_array_equal(params_a[name], params_b[name])


class TestPairwiseSum:
    def test_matches_explicit_tree(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5]
        # ((a+b)+(c+d)) + e — adjacent pairs per round, odd tail carried.
        expected = ((0.1 + 0.2) + (0.3 + 0.4)) + 0.5
        assert pairwise_sum(values) == expected

    def test_single_value_and_empty(self):
        assert pairwise_sum([7.0]) == 7.0
        with pytest.raises(ValueError):
            pairwise_sum([])

    def test_arrays_reduce_elementwise(self):
        arrays = [np.full(3, 1.0), np.full(3, 2.0), np.full(3, 4.0)]
        np.testing.assert_array_equal(pairwise_sum(arrays), np.full(3, 7.0))

    def test_reduction_is_deterministic_across_calls(self):
        # The guarantee is a *fixed* tree: the same values always reduce to
        # the same bits, including mixed magnitudes where association matters.
        rng = np.random.default_rng(0)
        values = list(rng.normal(size=9) * 10.0 ** rng.integers(-8, 8, size=9))
        assert pairwise_sum(values) == pairwise_sum(list(values))
        assert pairwise_sum(values) == pairwise_sum(tuple(values))


class TestPartitionAndRng:
    def test_partition_is_contiguous_and_worker_independent(self):
        indices = np.arange(10)
        slices = partition_batch(indices, 4)
        assert [len(s) for s in slices] == [3, 3, 2, 2]
        np.testing.assert_array_equal(np.concatenate(slices), indices)

    def test_partition_smaller_batch_leaves_empty_tails(self):
        slices = partition_batch(np.arange(2), 4)
        assert [len(s) for s in slices] == [1, 1, 0, 0]

    def test_slice_rng_is_deterministic_and_distinct(self):
        a = slice_rng(1, 5, 0).random(4)
        b = slice_rng(1, 5, 0).random(4)
        c = slice_rng(1, 5, 1).random(4)
        d = slice_rng(1, 6, 0).random(4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)


class TestWorkerCountInvariance:
    def test_one_vs_two_vs_four_workers_bit_identical(self):
        baseline = _train(ToyRegressionTask(), num_workers=1)
        _assert_identical(baseline, _train(ToyRegressionTask(), num_workers=2))
        _assert_identical(baseline, _train(ToyRegressionTask(), num_workers=4))

    def test_rng_consuming_task_is_worker_invariant(self):
        # Per-(step, slice) generators: tasks that draw randomness inside
        # compute_loss stay bit-identical across worker counts.
        baseline = _train(NoisyToyTask(), num_workers=1)
        _assert_identical(baseline, _train(NoisyToyTask(), num_workers=2))

    def test_sharded_corpus_is_worker_invariant(self, tmp_path):
        def task(sub):
            directory = tmp_path / sub
            return ToyRegressionTask(shard_dir=directory, shard_size=16)

        baseline = _train(task("a"), num_workers=1)
        _assert_identical(baseline, _train(task("b"), num_workers=2))

    def test_sequential_engine_unchanged_but_different_math(self):
        sequential, _ = _train(ToyRegressionTask(), num_workers=0)
        parallel, _ = _train(ToyRegressionTask(), num_workers=1)
        assert len(sequential.losses) == len(parallel.losses)
        # Sliced losses see a different decomposition; they are close but not
        # the same floating-point computation.
        assert sequential.losses != parallel.losses
        np.testing.assert_allclose(sequential.losses, parallel.losses, rtol=0.2)


class TestResume:
    def test_interrupt_with_one_worker_resume_with_two(self, tmp_path):
        reference = _train(ToyRegressionTask(), num_workers=1)

        ckpt = tmp_path / "toy.ckpt.npz"
        interrupted = ToyRegressionTask()
        Trainer(
            interrupted,
            TrainerConfig(num_workers=1, world_size=4, seed=3,
                          checkpoint_path=ckpt, checkpoint_every=1, max_steps=3),
        ).run()

        resumed_task = ToyRegressionTask()
        result = Trainer(
            resumed_task,
            TrainerConfig(num_workers=2, world_size=4, seed=3,
                          checkpoint_path=ckpt, checkpoint_every=1),
        ).run(resume=True)
        assert result.resumed_from_step == 3
        params = {n: p.data.copy() for n, p in resumed_task.linear.named_parameters()}
        _assert_identical(reference, (result, params))

    def test_engine_mismatch_is_refused(self, tmp_path):
        ckpt = tmp_path / "seq.ckpt.npz"
        Trainer(
            ToyRegressionTask(),
            TrainerConfig(seed=3, checkpoint_path=ckpt, checkpoint_every=1, max_steps=2),
        ).run()
        with pytest.raises(ValueError, match="sequential engine"):
            Trainer(
                ToyRegressionTask(),
                TrainerConfig(num_workers=1, seed=3, checkpoint_path=ckpt),
            ).run(resume=True)

    def test_shard_schedule_mismatch_is_refused(self, tmp_path):
        # A sharded checkpoint resumed without sharding (or vice versa) would
        # silently draw different minibatches; the engine must refuse.
        ckpt = tmp_path / "sched.ckpt.npz"
        Trainer(
            ToyRegressionTask(shard_dir=tmp_path / "shards", shard_size=16),
            TrainerConfig(seed=3, checkpoint_path=ckpt, checkpoint_every=1, max_steps=2),
        ).run()
        with pytest.raises(ValueError, match="ShardStreamPlan"):
            Trainer(
                ToyRegressionTask(),
                TrainerConfig(seed=3, checkpoint_path=ckpt),
            ).run(resume=True)
        with pytest.raises(ValueError, match="shard_size"):
            Trainer(
                ToyRegressionTask(shard_dir=tmp_path / "shards2", shard_size=8),
                TrainerConfig(seed=3, checkpoint_path=ckpt),
            ).run(resume=True)

    def test_world_size_mismatch_is_refused(self, tmp_path):
        ckpt = tmp_path / "par.ckpt.npz"
        Trainer(
            ToyRegressionTask(),
            TrainerConfig(num_workers=1, world_size=4, seed=3,
                          checkpoint_path=ckpt, checkpoint_every=1, max_steps=2),
        ).run()
        with pytest.raises(ValueError, match="world_size"):
            Trainer(
                ToyRegressionTask(),
                TrainerConfig(num_workers=1, world_size=2, seed=3, checkpoint_path=ckpt),
            ).run(resume=True)


class TestValidationAndErrors:
    def test_grad_accumulation_conflicts_with_parallel(self):
        with pytest.raises(ValueError, match="grad_accumulation"):
            Trainer(ToyRegressionTask(), TrainerConfig(num_workers=1, grad_accumulation=2))

    def test_more_workers_than_world_size_is_refused(self):
        with pytest.raises(ValueError, match="world_size"):
            Trainer(ToyRegressionTask(), TrainerConfig(num_workers=5, world_size=4))

    def test_worker_failure_propagates_with_traceback(self):
        with pytest.raises(WorkerError, match="boom from worker"):
            Trainer(
                FailingTask(),
                TrainerConfig(num_workers=2, world_size=4, seed=0),
            ).run()

    def test_in_process_failure_propagates_directly(self):
        with pytest.raises(RuntimeError, match="boom from worker"):
            Trainer(
                FailingTask(),
                TrainerConfig(num_workers=1, world_size=4, seed=0),
            ).run()


class TestSliceHelpers:
    def test_run_and_reduce_round_trip(self):
        task = ToyRegressionTask()
        task.setup(np.random.default_rng(0))
        parameters = list(task.linear.parameters())
        indices = np.arange(12)
        assignments = [
            (sid, chunk, len(chunk) / len(indices))
            for sid, chunk in enumerate(partition_batch(indices, 4))
        ]
        results = run_slices(task, parameters, seed=0, step=0, assignments=assignments)
        assert len(results) == 4 and all(r is not None for r in results)
        reduced = reduce_slices(results, len(parameters))
        assert reduced is not None
        loss, parts, grads = reduced
        assert loss == pairwise_sum([r.loss for r in results])
        assert set(parts) == {"mse"}
        assert len(grads) == len(parameters)
        for grad, param in zip(grads, parameters):
            assert grad.shape == param.data.shape

    def test_reduce_all_skipped_returns_none(self):
        assert reduce_slices([None, None], 2) is None

    def test_min_slice_items_caps_the_lanes(self):
        # batch of 6 with min_slice_items=2 must use at most 3 lanes even at
        # world_size=4 (no singleton slices reach compute_loss).
        class MinTask(ToyRegressionTask):
            min_slice_items = 2
            seen = []

            def compute_loss(self, indices, rng):
                MinTask.seen.append(len(indices))
                return super().compute_loss(indices, rng)

        MinTask.seen = []
        task = MinTask(batch_size=6, num_steps=2)
        Trainer(task, TrainerConfig(num_workers=1, world_size=4, seed=1)).run()
        assert MinTask.seen and all(size >= 2 for size in MinTask.seen)


class TestWorkerPool:
    def test_pool_context_manager_and_close_idempotent(self):
        import pickle

        task = ToyRegressionTask()
        task.setup(np.random.default_rng(0))
        with WorkerPool(pickle.dumps(task), num_workers=2, seed=0) as pool:
            parameters = list(task.linear.parameters())
            indices = np.arange(8)
            assignments = [
                (sid, chunk, len(chunk) / len(indices))
                for sid, chunk in enumerate(partition_batch(indices, 4))
            ]
            remote = pool.run_step(0, assignments, [p.data for p in parameters])
            local = run_slices(task, parameters, seed=0, step=0, assignments=assignments)
            for got, want in zip(remote, local):
                assert got.loss == want.loss
                for grad_got, grad_want in zip(got.grads, want.grads):
                    np.testing.assert_array_equal(grad_got, grad_want)
        pool.close()  # idempotent after __exit__

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(b"", num_workers=0, seed=0)
