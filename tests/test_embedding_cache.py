"""Direct tests for the LRU embedding cache (repro.encoders.embedding_cache).

The cache was previously exercised only through ExprLLM's encode paths; these
tests pin its eviction order and hit/miss/eviction accounting under capacity
pressure, which the serving workloads (many circuits through one bounded
cache) rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoders.embedding_cache import CacheStats, LRUEmbeddingCache


def vec(value: float) -> np.ndarray:
    return np.full(4, value)


class TestEvictionOrder:
    def test_evicts_least_recently_put(self):
        cache = LRUEmbeddingCache(capacity=3)
        for i in range(3):
            cache.put(i, vec(i))
        cache.put(3, vec(3))  # capacity exceeded: key 0 is the LRU
        assert 0 not in cache
        assert all(key in cache for key in (1, 2, 3))
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUEmbeddingCache(capacity=3)
        for i in range(3):
            cache.put(i, vec(i))
        assert cache.get(0) is not None  # 0 becomes most-recently-used
        cache.put(3, vec(3))             # so 1 is evicted instead
        assert 0 in cache
        assert 1 not in cache

    def test_put_of_existing_key_refreshes_recency_and_value(self):
        cache = LRUEmbeddingCache(capacity=2)
        cache.put("a", vec(1))
        cache.put("b", vec(2))
        cache.put("a", vec(9))  # refresh, not insert: no eviction
        assert cache.stats.evictions == 0
        cache.put("c", vec(3))  # "b" is now the LRU
        assert "b" not in cache
        np.testing.assert_array_equal(cache.get("a"), vec(9))

    def test_peek_does_not_touch_recency(self):
        cache = LRUEmbeddingCache(capacity=2)
        cache.put("a", vec(1))
        cache.put("b", vec(2))
        assert cache.peek("a") is not None
        cache.put("c", vec(3))  # "a" must still be the LRU despite the peek
        assert "a" not in cache
        assert "b" in cache

    def test_sustained_pressure_keeps_size_bounded(self):
        cache = LRUEmbeddingCache(capacity=5)
        for i in range(100):
            cache.put(i, vec(i))
        assert len(cache) == 5
        assert cache.stats.evictions == 95
        assert sorted(k for k in range(100) if k in cache) == [95, 96, 97, 98, 99]


class TestStats:
    def test_hit_miss_accounting(self):
        cache = LRUEmbeddingCache(capacity=2)
        assert cache.get("missing") is None
        cache.put("a", vec(1))
        assert cache.get("a") is not None
        assert cache.get("a") is not None
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_peek_does_not_count_as_lookup(self):
        cache = LRUEmbeddingCache(capacity=2)
        cache.put("a", vec(1))
        cache.peek("a")
        cache.peek("missing")
        assert cache.stats.lookups == 0

    def test_evictions_under_capacity_pressure_are_counted_exactly(self):
        cache = LRUEmbeddingCache(capacity=3)
        for i in range(10):
            cache.put(i, vec(i))
        assert cache.stats.evictions == 7
        # Misses on evicted keys are ordinary misses.
        assert cache.get(0) is None
        assert cache.stats.misses == 1

    def test_reuse_rate_includes_dedup_hits(self):
        stats = CacheStats(hits=2, misses=2, dedup_hits=4)
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.reuse_rate == pytest.approx((2 + 4) / (4 + 4))
        empty = CacheStats()
        assert empty.hit_rate == 0.0
        assert empty.reuse_rate == 0.0

    def test_snapshot_reports_occupancy_and_rates(self):
        cache = LRUEmbeddingCache(capacity=4)
        cache.put("a", vec(1))
        cache.get("a")
        cache.get("b")
        snapshot = cache.snapshot()
        assert snapshot["size"] == 1
        assert snapshot["capacity"] == 4
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["hit_rate"] == 0.5

    def test_clear_resets_entries_and_statistics(self):
        cache = LRUEmbeddingCache(capacity=2)
        cache.put("a", vec(1))
        cache.get("a")
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0
        assert cache.stats.evictions == 0


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUEmbeddingCache(capacity=0)

    def test_capacity_one_degenerates_gracefully(self):
        cache = LRUEmbeddingCache(capacity=1)
        cache.put("a", vec(1))
        cache.put("b", vec(2))
        assert "a" not in cache
        assert "b" in cache
        assert cache.stats.evictions == 1
