"""Tests for the micro-batching scheduler (repro.serve.scheduler)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import BatchScheduler, SchedulerClosed


class Recorder:
    """batch_fn double that records every batch it was handed."""

    def __init__(self, delay: float = 0.0):
        self.batches = []
        self.delay = delay
        self.lock = threading.Lock()

    def __call__(self, items):
        if self.delay:
            time.sleep(self.delay)
        with self.lock:
            self.batches.append(list(items))
        return [item * 2 for item in items]


class TestResults:
    def test_results_match_submission_order(self):
        recorder = Recorder()
        with BatchScheduler(recorder, max_batch_size=4, max_latency_ms=1.0) as scheduler:
            futures = scheduler.submit_many(list(range(10)))
            results = [future.result(timeout=5.0) for future in futures]
        assert results == [i * 2 for i in range(10)]

    def test_blocking_call_helper(self):
        with BatchScheduler(lambda items: [x + 1 for x in items], max_latency_ms=1.0) as s:
            assert s(41, timeout=5.0) == 42

    def test_single_item_flushes_by_deadline(self):
        recorder = Recorder()
        with BatchScheduler(recorder, max_batch_size=64, max_latency_ms=5.0) as scheduler:
            assert scheduler.submit("x").result(timeout=5.0) == "xx"
        stats = scheduler.stats()
        assert stats["deadline_flushes"] >= 1
        assert stats["completed"] == 1

    def test_coalesces_concurrent_submissions(self):
        recorder = Recorder(delay=0.02)  # slow worker lets the queue fill
        with BatchScheduler(recorder, max_batch_size=8, max_latency_ms=50.0) as scheduler:
            futures = [scheduler.submit(i) for i in range(16)]
            results = [future.result(timeout=10.0) for future in futures]
        assert results == [i * 2 for i in range(16)]
        stats = scheduler.stats()
        # 16 requests against a slow worker must not take 16 batches.
        assert stats["batches"] < 16
        assert stats["mean_batch_size"] > 1.0
        assert max(len(batch) for batch in recorder.batches) <= 8

    def test_many_threads_submit_concurrently(self):
        recorder = Recorder()
        errors = []
        with BatchScheduler(recorder, max_batch_size=16, max_latency_ms=2.0) as scheduler:

            def worker(base):
                try:
                    for i in range(20):
                        assert scheduler(base + i, timeout=10.0) == (base + i) * 2
                except Exception as error:  # pragma: no cover - failure reporting
                    errors.append(error)

            threads = [threading.Thread(target=worker, args=(t * 1000,)) for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert scheduler.stats()["completed"] == 80


class TestFailure:
    def test_batch_error_propagates_to_all_waiters_only_in_that_batch(self):
        calls = []

        def flaky(items):
            calls.append(list(items))
            if "bad" in items:
                raise RuntimeError("boom")
            return items

        with BatchScheduler(flaky, max_batch_size=64, max_latency_ms=1.0) as scheduler:
            bad = scheduler.submit("bad")
            with pytest.raises(RuntimeError, match="boom"):
                bad.result(timeout=5.0)
            # The scheduler stays alive for later batches.
            assert scheduler.submit("good").result(timeout=5.0) == "good"
        stats = scheduler.stats()
        assert stats["failed"] >= 1
        assert stats["completed"] >= 1

    def test_wrong_result_count_is_an_error(self):
        with BatchScheduler(lambda items: [], max_latency_ms=1.0) as scheduler:
            with pytest.raises(RuntimeError, match="results"):
                scheduler.submit("x").result(timeout=5.0)


class TestLifecycle:
    def test_close_drains_pending_work(self):
        recorder = Recorder(delay=0.01)
        scheduler = BatchScheduler(recorder, max_batch_size=4, max_latency_ms=500.0)
        futures = scheduler.submit_many(list(range(6)))
        scheduler.close()  # must not strand the 2-item tail behind the deadline
        assert [future.result(timeout=1.0) for future in futures] == [i * 2 for i in range(6)]

    def test_submit_after_close_raises(self):
        scheduler = BatchScheduler(lambda items: items, max_latency_ms=1.0)
        scheduler.close()
        assert scheduler.closed
        with pytest.raises(SchedulerClosed):
            scheduler.submit(1)

    def test_double_close_is_safe(self):
        scheduler = BatchScheduler(lambda items: items, max_latency_ms=1.0)
        scheduler.close()
        scheduler.close()

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BatchScheduler(lambda items: items, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(lambda items: items, max_latency_ms=-1.0)
