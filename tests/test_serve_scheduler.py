"""Tests for the micro-batching scheduler (repro.serve.scheduler)."""

from __future__ import annotations

import threading
import time
from concurrent.futures import InvalidStateError

import pytest

from repro.serve import BatchScheduler, SchedulerClosed


class Recorder:
    """batch_fn double that records every batch it was handed."""

    def __init__(self, delay: float = 0.0):
        self.batches = []
        self.delay = delay
        self.lock = threading.Lock()

    def __call__(self, items):
        if self.delay:
            time.sleep(self.delay)
        with self.lock:
            self.batches.append(list(items))
        return [item * 2 for item in items]


class TestResults:
    def test_results_match_submission_order(self):
        recorder = Recorder()
        with BatchScheduler(recorder, max_batch_size=4, max_latency_ms=1.0) as scheduler:
            futures = scheduler.submit_many(list(range(10)))
            results = [future.result(timeout=5.0) for future in futures]
        assert results == [i * 2 for i in range(10)]

    def test_blocking_call_helper(self):
        with BatchScheduler(lambda items: [x + 1 for x in items], max_latency_ms=1.0) as s:
            assert s(41, timeout=5.0) == 42

    def test_single_item_flushes_by_deadline(self):
        recorder = Recorder()
        with BatchScheduler(recorder, max_batch_size=64, max_latency_ms=5.0) as scheduler:
            assert scheduler.submit("x").result(timeout=5.0) == "xx"
        stats = scheduler.stats()
        assert stats["deadline_flushes"] >= 1
        assert stats["completed"] == 1

    def test_coalesces_concurrent_submissions(self):
        recorder = Recorder(delay=0.02)  # slow worker lets the queue fill
        with BatchScheduler(recorder, max_batch_size=8, max_latency_ms=50.0) as scheduler:
            futures = [scheduler.submit(i) for i in range(16)]
            results = [future.result(timeout=10.0) for future in futures]
        assert results == [i * 2 for i in range(16)]
        stats = scheduler.stats()
        # 16 requests against a slow worker must not take 16 batches.
        assert stats["batches"] < 16
        assert stats["mean_batch_size"] > 1.0
        assert max(len(batch) for batch in recorder.batches) <= 8

    def test_many_threads_submit_concurrently(self):
        recorder = Recorder()
        errors = []
        with BatchScheduler(recorder, max_batch_size=16, max_latency_ms=2.0) as scheduler:

            def worker(base):
                try:
                    for i in range(20):
                        assert scheduler(base + i, timeout=10.0) == (base + i) * 2
                except Exception as error:  # pragma: no cover - failure reporting
                    errors.append(error)

            threads = [threading.Thread(target=worker, args=(t * 1000,)) for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert scheduler.stats()["completed"] == 80


class TestFailure:
    def test_batch_error_propagates_to_all_waiters_only_in_that_batch(self):
        calls = []

        def flaky(items):
            calls.append(list(items))
            if "bad" in items:
                raise RuntimeError("boom")
            return items

        with BatchScheduler(flaky, max_batch_size=64, max_latency_ms=1.0) as scheduler:
            bad = scheduler.submit("bad")
            with pytest.raises(RuntimeError, match="boom"):
                bad.result(timeout=5.0)
            # The scheduler stays alive for later batches.
            assert scheduler.submit("good").result(timeout=5.0) == "good"
        stats = scheduler.stats()
        assert stats["failed"] >= 1
        assert stats["completed"] >= 1

    def test_wrong_result_count_is_an_error(self):
        with BatchScheduler(lambda items: [], max_latency_ms=1.0) as scheduler:
            with pytest.raises(RuntimeError, match="results"):
                scheduler.submit("x").result(timeout=5.0)


class _PoisonFuture:
    """Future double that accepts cancellation checks but refuses delivery.

    Mimics the real race: ``cancelled()`` returns False when the worker
    checks, then the state flips and ``set_result``/``set_exception`` raise
    ``InvalidStateError`` — exactly what a concurrent ``Future.cancel`` landing
    between check and delivery produces.
    """

    def __init__(self):
        self.delivery_attempts = 0

    def cancelled(self):
        return False

    def set_result(self, result):
        self.delivery_attempts += 1
        raise InvalidStateError("cancelled between check and delivery")

    def set_exception(self, error):
        self.delivery_attempts += 1
        raise InvalidStateError("cancelled between check and delivery")


class TestDrainRaces:
    """close()/cancel races: submissions must complete or raise, never hang."""

    def test_delivery_race_does_not_kill_the_worker(self):
        # Regression: an InvalidStateError out of set_result used to escape
        # the worker loop, killing the thread — after which every queued or
        # later-submitted request hung forever.
        recorder = Recorder()
        scheduler = BatchScheduler(recorder, max_batch_size=4, max_latency_ms=1.0)
        try:
            poison = _PoisonFuture()
            with scheduler._lock:
                scheduler._queue.append(("poison", poison, time.monotonic()))
                scheduler._wakeup.notify()
            # The worker must survive the failed delivery and keep serving.
            assert scheduler.submit(21).result(timeout=5.0) == 42
            assert poison.delivery_attempts == 1
            assert scheduler._worker.is_alive()
        finally:
            scheduler.close()

    def test_cancelled_future_does_not_affect_batch_mates(self):
        recorder = Recorder(delay=0.02)
        with BatchScheduler(recorder, max_batch_size=8, max_latency_ms=100.0) as scheduler:
            first = scheduler.submit("a")  # occupies the worker for 20ms
            victim = scheduler.submit("b")
            survivor = scheduler.submit("c")
            victim.cancel()
            assert first.result(timeout=5.0) == "aa"
            assert survivor.result(timeout=5.0) == "cc"
        assert victim.cancelled()

    def test_submit_racing_close_completes_or_raises(self):
        # Hammer submit from several threads while the scheduler closes
        # mid-stream.  Every future handed out must resolve (drained before
        # the close flag) or the submit must raise SchedulerClosed — a hang
        # (result() timeout) fails the test.
        recorder = Recorder(delay=0.001)
        scheduler = BatchScheduler(recorder, max_batch_size=4, max_latency_ms=1.0)
        outcomes = []
        outcome_lock = threading.Lock()

        def submitter(base):
            for i in range(50):
                try:
                    future = scheduler.submit(base + i)
                except SchedulerClosed:
                    with outcome_lock:
                        outcomes.append("rejected")
                    return
                try:
                    value = future.result(timeout=10.0)
                    assert value == (base + i) * 2
                    with outcome_lock:
                        outcomes.append("completed")
                except SchedulerClosed:
                    with outcome_lock:
                        outcomes.append("failed-clean")

        threads = [threading.Thread(target=submitter, args=(t * 1000,)) for t in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        scheduler.close()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads), "a submitter hung"
        assert "completed" in outcomes  # some work really ran before the close
        # Whatever wasn't completed was rejected or failed cleanly — nothing hung.
        assert set(outcomes) <= {"completed", "rejected", "failed-clean"}

    def test_submit_after_worker_stop_raises_not_hangs(self):
        scheduler = BatchScheduler(lambda items: items, max_latency_ms=1.0)
        scheduler.close()
        scheduler._worker.join(timeout=5.0)
        assert not scheduler._worker.is_alive()
        with pytest.raises(SchedulerClosed):
            scheduler.submit("late")


class TestLifecycle:
    def test_close_drains_pending_work(self):
        recorder = Recorder(delay=0.01)
        scheduler = BatchScheduler(recorder, max_batch_size=4, max_latency_ms=500.0)
        futures = scheduler.submit_many(list(range(6)))
        scheduler.close()  # must not strand the 2-item tail behind the deadline
        assert [future.result(timeout=1.0) for future in futures] == [i * 2 for i in range(6)]

    def test_submit_after_close_raises(self):
        scheduler = BatchScheduler(lambda items: items, max_latency_ms=1.0)
        scheduler.close()
        assert scheduler.closed
        with pytest.raises(SchedulerClosed):
            scheduler.submit(1)

    def test_double_close_is_safe(self):
        scheduler = BatchScheduler(lambda items: items, max_latency_ms=1.0)
        scheduler.close()
        scheduler.close()

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BatchScheduler(lambda items: items, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(lambda items: items, max_latency_ms=-1.0)
