"""Tests for the gate-text tokenizer feeding ExprLLM."""

from __future__ import annotations

import pytest

from repro.expr import ExprTokenizer


@pytest.fixture(scope="module")
def tokenizer():
    return ExprTokenizer(max_length=48)


SAMPLE_TEXT = (
    "[Name] U3 [Type] NOR2 [Expr] U3 = !((R1 ^ R2) | !R2) "
    "[Phys] {Power: 3.3, Area: 1.1, Delay: 0.02, Capacitance: 5.7}"
)


class TestTokenization:
    def test_operators_are_first_class_tokens(self, tokenizer):
        tokens = tokenizer.tokenize("!((R1 ^ R2) | !R2)")
        assert "!" in tokens and "^" in tokens and "|" in tokens and "(" in tokens

    def test_field_markers_kept(self, tokenizer):
        tokens = tokenizer.tokenize(SAMPLE_TEXT)
        assert "[Name]" in tokens and "[Type]" in tokens and "[Expr]" in tokens and "[Phys]" in tokens

    def test_cell_types_kept(self, tokenizer):
        tokens = tokenizer.tokenize("[Type] NOR2")
        assert "NOR2" in tokens

    def test_identifiers_hashed_to_var_buckets(self, tokenizer):
        tokens = tokenizer.tokenize("some_signal_42x & another_net")
        assert all(t.startswith("<VAR_") or t == "&" for t in tokens)

    def test_same_identifier_same_bucket(self, tokenizer):
        first = tokenizer.tokenize("mysignal")[0]
        second = tokenizer.tokenize("mysignal & other")[0]
        assert first == second

    def test_numbers_binned(self, tokenizer):
        tokens = tokenizer.tokenize("Power: 3.3")
        assert any(t.startswith("<NUM_") for t in tokens)

    def test_numeric_bins_monotone(self, tokenizer):
        small = tokenizer._numeric_token(0.001)
        large = tokenizer._numeric_token(1000.0)
        assert int(small[5:-1]) < int(large[5:-1])


class TestEncoding:
    def test_encode_pads_to_max_length(self, tokenizer):
        ids, mask = tokenizer.encode("a & b")
        assert len(ids) == tokenizer.max_length
        assert len(mask) == tokenizer.max_length
        assert mask[0] is True and mask[-1] is False

    def test_encode_truncates_long_text(self, tokenizer):
        ids, mask = tokenizer.encode(" & ".join(f"sig{i}" for i in range(200)))
        assert len(ids) == tokenizer.max_length
        assert all(mask)

    def test_cls_token_prepended(self, tokenizer):
        ids, _ = tokenizer.encode("a", add_cls=True)
        assert ids[0] == tokenizer.cls_id

    def test_encode_batch_shapes(self, tokenizer):
        ids, mask = tokenizer.encode_batch(["a & b", "c | d", SAMPLE_TEXT])
        assert len(ids) == 3
        assert all(len(row) == tokenizer.max_length for row in ids)

    def test_encoding_is_deterministic(self, tokenizer):
        assert tokenizer.encode(SAMPLE_TEXT) == tokenizer.encode(SAMPLE_TEXT)

    def test_decode_round_trip_tokens(self, tokenizer):
        ids, _ = tokenizer.encode("a & b", add_cls=False, pad=False)
        decoded = tokenizer.decode(ids)
        assert "&" in decoded

    def test_vocab_ids_in_range(self, tokenizer):
        ids, _ = tokenizer.encode(SAMPLE_TEXT)
        assert max(ids) < tokenizer.vocab_size
        assert min(ids) >= 0
