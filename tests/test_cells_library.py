"""Tests for the standard-cell library substrate (repro.cells)."""

from __future__ import annotations

import pytest

from repro.cells import Cell, CellLibrary, NANGATE45, UnknownCellError, build_nangate45
from repro.expr import equivalent, parse


class TestCell:
    def test_requires_input_pins_for_logic_cells(self):
        with pytest.raises(ValueError):
            Cell(
                name="BAD_X1", cell_type="BAD", function="and", input_pins=(),
                output_pin="Z", area=1.0, delay=0.01, drive_resistance=1.0,
                input_capacitance=1.0, leakage_power=0.1, switching_energy=0.5,
            )

    def test_requires_positive_area(self):
        with pytest.raises(ValueError):
            Cell(
                name="BAD_X1", cell_type="BAD", function="and", input_pins=("A", "B"),
                output_pin="Z", area=0.0, delay=0.01, drive_resistance=1.0,
                input_capacitance=1.0, leakage_power=0.1, switching_energy=0.5,
            )

    def test_num_inputs(self):
        cell = NANGATE45.cell("NAND2_X1")
        assert cell.num_inputs == 2

    def test_local_expression_matches_function(self):
        nand2 = NANGATE45.cell("NAND2_X1")
        expr = nand2.local_expression(["a", "b"])
        assert equivalent(expr, parse("!(a & b)"))

    def test_local_expression_default_symbols_are_pins(self):
        xor2 = NANGATE45.cell("XOR2_X1")
        expr = xor2.local_expression()
        assert set(v for v in expr.variables()) == set(xor2.input_pins)

    def test_local_expression_wrong_arity_raises(self):
        and2 = NANGATE45.cell("AND2_X1")
        with pytest.raises(ValueError):
            and2.local_expression(["a"])

    def test_load_delay_monotone_in_load(self):
        cell = NANGATE45.cell("INV_X1")
        assert cell.load_delay(2.0) > cell.load_delay(1.0) > cell.load_delay(0.0)
        assert cell.load_delay(0.0) == pytest.approx(cell.delay)

    def test_load_delay_clamps_negative_load(self):
        cell = NANGATE45.cell("INV_X1")
        assert cell.load_delay(-5.0) == pytest.approx(cell.delay)


class TestNanGate45Library:
    def test_singleton_and_builder_agree(self):
        rebuilt = build_nangate45()
        assert len(rebuilt) == len(NANGATE45)
        assert set(rebuilt.cell_types) == set(NANGATE45.cell_types)

    def test_contains_and_lookup(self):
        assert "NAND2_X1" in NANGATE45
        assert "NOPE_X9" not in NANGATE45
        assert NANGATE45.cell("NAND2_X1").cell_type == "NAND2"

    def test_unknown_cell_raises(self):
        with pytest.raises(UnknownCellError):
            NANGATE45.cell("NOT_A_CELL")
        with pytest.raises(UnknownCellError):
            NANGATE45.cells_of_type("NOT_A_TYPE")

    def test_combinational_cells_have_three_drive_strengths(self):
        nands = NANGATE45.cells_of_type("NAND2")
        assert sorted(c.drive_strength for c in nands) == [1, 2, 4]

    def test_sequential_cells_single_drive_strength(self):
        dffs = NANGATE45.cells_of_type("DFF")
        assert [c.drive_strength for c in dffs] == [1]
        assert all(c.is_sequential for c in dffs)

    def test_default_cell_picks_closest_drive_strength(self):
        assert NANGATE45.default_cell("NAND2", 1).drive_strength == 1
        assert NANGATE45.default_cell("NAND2", 4).drive_strength == 4
        assert NANGATE45.default_cell("NAND2", 3).drive_strength in (2, 4)

    def test_sequential_vs_combinational_partition(self):
        seq = set(NANGATE45.sequential_types)
        comb = set(NANGATE45.combinational_types)
        assert seq.isdisjoint(comb)
        assert seq | comb == set(NANGATE45.cell_types)
        assert {"DFF", "DFFR", "DFFS"} <= seq

    def test_type_index_is_stable_and_dense(self):
        index = NANGATE45.type_index()
        assert sorted(index.values()) == list(range(len(index)))
        assert index == NANGATE45.type_index()

    def test_drive_strength_scaling_tradeoffs(self):
        """Higher drive: more area and input cap, lower drive resistance."""
        x1 = NANGATE45.cell("NAND2_X1")
        x4 = NANGATE45.cell("NAND2_X4")
        assert x4.area > x1.area
        assert x4.input_capacitance > x1.input_capacitance
        assert x4.drive_resistance < x1.drive_resistance

    def test_relative_cell_ordering_is_physical(self):
        """Inverters are the smallest logic cells; flip-flops dominate area."""
        inv = NANGATE45.cell("INV_X1")
        xor = NANGATE45.cell("XOR2_X1")
        dff = NANGATE45.cell("DFF_X1")
        assert inv.area < xor.area < dff.area
        assert inv.delay < xor.delay

    def test_duplicate_cell_name_rejected(self):
        cell = NANGATE45.cell("INV_X1")
        library = CellLibrary("dup_test", [cell])
        with pytest.raises(ValueError):
            library.add_cell(cell)

    def test_every_cell_function_is_expressible(self):
        """Every combinational cell's function lowers to a Boolean expression."""
        for cell in NANGATE45:
            if cell.is_sequential:
                continue
            expr = cell.local_expression()
            assert expr is not None

    def test_tie_cells_present(self):
        assert NANGATE45.cell("TIELO_X1").function == "const0"
        assert NANGATE45.cell("TIEHI_X1").function == "const1"
