"""Tests for the batched TAG encoding engine and expression-embedding cache.

Covers the engine's contract points:

* ``BatchedTAG`` packing invariants (offsets, block structure, masks),
* batched-vs-sequential parity on mixed-size cone batches (1e-8), including
  single-graph and empty-batch edge cases,
* LRU expression-embedding cache correctness (enabled == disabled, statistics,
  eviction at capacity),
* bit-identical determinism of two same-seed ``NetTAGPipeline`` runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NetTAG, NetTAGConfig, NetTAGPipeline
from repro.encoders import ExprLLM, LRUEmbeddingCache, TextEncoderConfig
from repro.netlist import (
    BatchedTAG,
    Netlist,
    chunk_by_node_budget,
    extract_register_cones,
    netlist_to_tag,
)
from repro.nn import Tensor, get_backend
from repro.rtl import make_controller

# Batched-vs-sequential parity tolerance: the packed engine is equal to the
# per-cone path to 1e-8 under the float64 reference backend; under a float32
# backend the same algebra holds to float32 rounding (the tighter 1e-5
# normwise bound is enforced end-to-end by test_backend_parity.py).
if get_backend().compute_dtype == np.float64:
    PARITY_TOL = dict(atol=1e-8)
else:
    PARITY_TOL = dict(atol=1e-5, rtol=1e-4)


# ----------------------------------------------------------------------
# BatchedTAG structure
# ----------------------------------------------------------------------
class TestBatchedTAGStructure:
    @pytest.fixture(scope="class")
    def tags(self, seq_netlist):
        cones = extract_register_cones(seq_netlist)
        return [netlist_to_tag(cone.netlist) for cone in cones]

    def test_offsets_and_sizes(self, tags):
        batch = BatchedTAG.from_tags(tags)
        assert batch.num_graphs == len(tags)
        assert batch.total_nodes == sum(tag.num_nodes for tag in tags)
        assert batch.total_slots == batch.total_nodes + batch.num_graphs
        for g, tag in enumerate(tags):
            block = batch.graph_slice(g)
            assert block.stop - block.start == tag.num_nodes

    def test_pack_split_round_trip(self, tags):
        batch = BatchedTAG.from_tags(tags)
        rng = np.random.default_rng(0)
        per_graph = [rng.normal(size=(tag.num_nodes, 5)) for tag in tags]
        packed = batch.pack(per_graph)
        for original, recovered in zip(per_graph, batch.split(packed)):
            np.testing.assert_array_equal(original, recovered)

    def test_block_adjacency_is_block_diagonal(self, tags):
        batch = BatchedTAG.from_tags(tags)
        block = batch.block_adjacency
        for g, tag in enumerate(tags):
            sl = batch.graph_slice(g)
            np.testing.assert_array_equal(block[sl, sl], tag.graph.adjacency)
        # Zero outside the blocks.
        mask = np.zeros_like(block, dtype=bool)
        for g in range(batch.num_graphs):
            sl = batch.graph_slice(g)
            mask[sl, sl] = True
        assert np.all(block[~mask] == 0.0)

    def test_attention_mask_matches_segments(self, tags):
        batch = BatchedTAG.from_tags(tags)
        mask = batch.attention_mask
        segments = batch.extended_segment_ids
        assert mask.shape == (batch.total_slots, batch.total_slots)
        np.testing.assert_array_equal(mask, segments[:, None] == segments[None, :])
        # Every row can attend somewhere (at least itself).
        assert mask.diagonal().all()

    def test_cls_rows_connect_only_own_graph(self, tags):
        batch = BatchedTAG.from_tags(tags)
        extended = batch.extended_adjacency
        for g, tag in enumerate(tags):
            row = extended[batch.cls_index(g)]
            sl = batch.graph_slice(g)
            expected_weight = 1.0 / max(tag.num_nodes, 1)
            np.testing.assert_allclose(row[sl], expected_weight)
            assert row[batch.cls_index(g)] == 1.0
            outside = np.delete(row, np.r_[sl, batch.cls_index(g)])
            assert np.all(outside == 0.0)

    def test_plain_list_adjacencies_accepted(self):
        batch = BatchedTAG.from_adjacencies([[[1.0, 0.5], [0.5, 1.0]], [[1.0]]])
        assert batch.total_nodes == 3
        assert batch.extended_adjacency.shape == (5, 5)

    def test_non_square_adjacency_rejected(self):
        with pytest.raises(ValueError):
            BatchedTAG.from_adjacencies([np.zeros((2, 3))])

    def test_chunk_by_node_budget(self):
        assert chunk_by_node_budget([], 10) == []
        assert chunk_by_node_budget([3, 3, 3], 100) == [[0, 1, 2]]
        # The budget counts slots (nodes + one CLS per graph): 5 + 5 <= 10.
        assert chunk_by_node_budget([4, 4, 4], 10) == [[0, 1], [2]]
        # Many tiny graphs cannot overshoot through their CLS rows alone.
        assert chunk_by_node_budget([1] * 6, 4) == [[0, 1], [2, 3], [4, 5]]
        # An oversized graph still gets a singleton chunk.
        assert chunk_by_node_budget([50, 2], 10) == [[0], [1]]
        with pytest.raises(ValueError):
            chunk_by_node_budget([1], 0)


# ----------------------------------------------------------------------
# Batched vs sequential parity
# ----------------------------------------------------------------------
class TestBatchedSequentialParity:
    @pytest.fixture(scope="class")
    def cones(self, seq_netlist):
        cones = extract_register_cones(seq_netlist)
        assert len(cones) >= 3
        return cones

    def test_mixed_size_cone_batch_matches_sequential(self, small_model, cones):
        sequential = [small_model.encode_cone(cone) for cone in cones]
        small_model.clear_caches()
        batched = small_model.encode_batch(cones)
        assert len(batched) == len(cones)
        sizes = {cone.netlist.num_gates for cone in cones}
        assert len(sizes) > 1, "parity workload should mix cone sizes"
        for want, got in zip(sequential, batched):
            np.testing.assert_allclose(got, want, **PARITY_TOL)

    def test_single_cone_batch(self, small_model, cones):
        want = small_model.encode_cone(cones[0])
        got = small_model.encode_batch([cones[0]])
        assert len(got) == 1
        np.testing.assert_allclose(got[0], want, **PARITY_TOL)

    def test_empty_batch(self, small_model):
        assert small_model.encode_batch([]) == []
        assert small_model.encode_tags_batch([]) == []

    def test_empty_tag_yields_zero_embeddings(self, small_model):
        empty = Netlist("empty")
        tag = netlist_to_tag(empty)
        (gates, graph), = small_model.encode_tags_batch([tag])
        assert gates.shape == (0, small_model.gate_embedding_dim)
        assert graph.shape == (small_model.graph_embedding_dim,)
        assert np.all(graph == 0.0)

    def test_chunked_encoding_matches_unchunked(self, small_model, cones):
        tags = [netlist_to_tag(c.netlist, k=small_model.config.expression_hops) for c in cones]
        whole = small_model.encode_batch(cones, tags=tags)
        chunked = small_model.encode_batch(cones, tags=tags, max_nodes_per_chunk=4)
        for want, got in zip(whole, chunked):
            np.testing.assert_allclose(got, want, **PARITY_TOL)

    def test_encode_tags_batch_matches_multigrained(self, small_model, comb_netlist):
        tag = small_model.build_tag(comb_netlist)
        want_gates, want_graph = small_model.encode_tag_multigrained(tag)
        (got_gates, got_graph), = small_model.encode_tags_batch([tag])
        np.testing.assert_allclose(got_gates, want_gates, **PARITY_TOL)
        np.testing.assert_allclose(got_graph, want_graph, **PARITY_TOL)

    def test_embed_cones_uses_batched_engine(self, small_model, cones):
        table = small_model.embed_cones(cones)
        for cone in cones:
            np.testing.assert_allclose(
                table[cone.register_name], small_model.encode_cone(cone), **PARITY_TOL
            )

    def test_tag_count_mismatch_rejected(self, small_model, cones):
        with pytest.raises(ValueError):
            small_model.encode_batch(cones, tags=[])

    def test_forward_batch_gradients_flow(self, small_model, cones):
        """The packed forward is differentiable (pre-training uses it)."""
        tags = [netlist_to_tag(c.netlist) for c in cones[:3]]
        model = small_model.tagformer
        batch = BatchedTAG.from_tags(tags)
        features = Tensor(
            np.random.default_rng(0).normal(size=(batch.total_nodes, model.config.input_dim)),
            requires_grad=True,
        )
        nodes, graphs = model.forward_batch(features, batch)
        (nodes.sum() + graphs.sum()).backward()
        assert features.grad is not None and np.abs(features.grad).sum() > 0
        assert model.cls_token.grad is not None


# ----------------------------------------------------------------------
# Expression-embedding cache
# ----------------------------------------------------------------------
class TestExpressionEmbeddingCache:
    def _texts(self):
        return [
            "[Name] g1 [Type] NAND2 [Expr] g1 = !(a & b)",
            "[Name] g2 [Type] NAND2 [Expr] g2 = !(x & y)",  # canonical twin of g1
            "[Name] g3 [Type] XOR2 [Expr] g3 = a ^ b",
            "[Name] g1 [Type] NAND2 [Expr] g1 = !(a & b)",  # exact duplicate
        ]

    def test_enabled_and_disabled_caches_agree(self):
        model = ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(3))
        texts = self._texts()
        model.set_cache_enabled(False)
        without = model.encode_texts(texts)
        model.set_cache_enabled(True)
        first = model.encode_texts(texts)
        again = model.encode_texts(texts)  # pure cache hits
        np.testing.assert_allclose(first, without, atol=1e-12)
        np.testing.assert_array_equal(first, again)

    def test_canonical_key_shares_entries_across_names(self):
        model = ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(3))
        embeddings = model.encode_texts(self._texts())
        # g1 and g2 differ only by signal naming -> same canonical key.
        np.testing.assert_array_equal(embeddings[0], embeddings[1])
        assert not np.allclose(embeddings[0], embeddings[2])
        stats = model.cache_stats()
        assert stats["size"] == 2          # two distinct canonical expressions
        assert stats["misses"] == 2
        assert stats["dedup_hits"] == 2    # canonical twin + exact duplicate (in-call)
        assert stats["hits"] == 0          # nothing was in the LRU yet
        assert 0.0 < stats["reuse_rate"] <= 1.0
        model.encode_texts(self._texts())  # second call: now the LRU serves it
        assert model.cache_stats()["hits"] > 0
        assert 0.0 < model.cache_stats()["hit_rate"] <= 1.0

    def test_eviction_at_capacity_does_not_corrupt_results(self):
        model = ExprLLM(
            TextEncoderConfig.preset("small"),
            rng=np.random.default_rng(3),
            cache_capacity=2,
        )
        texts = [f"[Type] AND2 [Expr] y = a & b{'!' * i}" for i in range(6)]
        first = model.encode_texts(texts)
        stats = model.cache_stats()
        assert stats["evictions"] > 0
        assert stats["size"] <= 2
        second = model.encode_texts(texts)  # mostly recomputed after eviction
        np.testing.assert_allclose(second, first, atol=1e-12)

    def test_lru_cache_unit_behaviour(self):
        cache = LRUEmbeddingCache(capacity=2)
        cache.put("a", np.array([1.0]))
        cache.put("b", np.array([2.0]))
        assert cache.get("a") is not None   # refresh "a": now "b" is oldest
        cache.put("c", np.array([3.0]))
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.get("b") is None
        assert cache.stats.evictions == 1
        cache.clear()
        assert len(cache) == 0

    def test_batched_encoding_cache_on_off_parity(self, small_model, seq_netlist):
        cones = extract_register_cones(seq_netlist)
        small_model.clear_caches()
        with_cache = small_model.encode_batch(cones)
        reuse_rate = small_model.expr_llm.cache_stats()["reuse_rate"]
        small_model.expr_llm.set_cache_enabled(False)
        try:
            without_cache = small_model.encode_batch(cones)
        finally:
            small_model.expr_llm.set_cache_enabled(True)
        for want, got in zip(with_cache, without_cache):
            np.testing.assert_allclose(got, want, atol=1e-12)
        assert 0.0 <= reuse_rate <= 1.0


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestPipelineDeterminism:
    def test_same_seed_runs_are_bit_identical(self, seq_netlist):
        """Two same-seed pipeline runs must produce identical embeddings.

        Guards the rng handling in ``TAGFormer.__init__`` (fixed
        ``default_rng(2)`` for the cls_token mixed with the caller's rng) and
        every other seeded component of the pre-training pipeline.
        """
        corpus = {"suite": [make_controller("det", seed=11, num_states=3, data_width=3)]}

        def run() -> np.ndarray:
            config = NetTAGConfig.fast(use_cross_stage_alignment=False)
            pipeline = NetTAGPipeline(config)
            pipeline.pretrain(corpus)
            embeddings, _ = pipeline.embed_gates(seq_netlist)
            return embeddings

        first = run()
        second = run()
        np.testing.assert_array_equal(first, second)

    def test_untrained_models_with_same_seed_are_identical(self, seq_netlist):
        config = NetTAGConfig.fast()
        a = NetTAG(config, rng=np.random.default_rng(5))
        b = NetTAG(config, rng=np.random.default_rng(5))
        gates_a, _ = a.embed_gates(seq_netlist)
        gates_b, _ = b.embed_gates(seq_netlist)
        np.testing.assert_array_equal(gates_a, gates_b)
