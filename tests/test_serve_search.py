"""Tests for exact and IVF-approximate cosine retrieval (repro.serve.search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import EmbeddingIndex, IVFSearcher, exact_topk, recall_at_k


def brute_force_topk(matrix: np.ndarray, query: np.ndarray, k: int) -> list:
    sims = (matrix / np.linalg.norm(matrix, axis=1, keepdims=True)) @ (
        query / np.linalg.norm(query)
    )
    order = np.argsort(-sims, kind="stable")
    return [int(i) for i in order[:k]]


@pytest.fixture()
def filled_index(tmp_path):
    rng = np.random.default_rng(42)
    vectors = rng.normal(size=(40, 12))
    index = EmbeddingIndex.create(tmp_path / "idx", dim=12, shard_size=7)
    index.add([f"k{i}" for i in range(40)], vectors)
    index.save()
    return index, vectors


class TestExactTopK:
    def test_matches_brute_force_across_shards(self, filled_index):
        index, vectors = filled_index
        rng = np.random.default_rng(7)
        queries = rng.normal(size=(5, 12))
        results = exact_topk(index, queries, k=6)
        for q in range(5):
            want = [f"k{i}" for i in brute_force_topk(vectors, queries[q], 6)]
            assert [hit.key for hit in results[q]] == want

    def test_scores_are_cosines(self, filled_index):
        index, vectors = filled_index
        results = exact_topk(index, vectors[3], k=1)
        assert results[0][0].key == "k3"
        assert results[0][0].score == pytest.approx(1.0, abs=1e-6)

    def test_kind_filter_restricts_namespace(self, tmp_path):
        rng = np.random.default_rng(0)
        index = EmbeddingIndex.create(tmp_path / "idx", dim=6)
        index.add(["c0", "c1"], rng.normal(size=(2, 6)), kinds="circuit")
        index.add(["n0", "n1", "n2"], rng.normal(size=(3, 6)), kinds="cone")
        hits = exact_topk(index, rng.normal(size=6), k=10, kind="cone")[0]
        assert {hit.key for hit in hits} == {"n0", "n1", "n2"}
        assert all(hit.kind == "cone" for hit in hits)

    def test_exclude_keys_and_tombstones_never_surface(self, filled_index):
        index, vectors = filled_index
        index.remove(["k0"])
        hits = exact_topk(index, vectors[0], k=5, exclude_keys=["k1"])[0]
        keys = {hit.key for hit in hits}
        assert "k0" not in keys and "k1" not in keys

    def test_superseded_duplicate_rows_do_not_surface(self, tmp_path):
        rng = np.random.default_rng(1)
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4, shard_size=2)
        stale = rng.normal(size=4)
        index.add(["dup", "x"], np.vstack([stale, rng.normal(size=4)]))
        index.save()
        fresh = -stale  # exactly opposite direction
        index.add(["dup"], fresh[None, :])
        hits = exact_topk(index, stale, k=3)[0]
        by_key = {hit.key: hit.score for hit in hits}
        # The stale row (similarity 1.0 with itself) must be masked; the live
        # "dup" row points the other way.
        assert by_key["dup"] == pytest.approx(-1.0, abs=1e-6)

    def test_save_load_query_identical_topk(self, filled_index, tmp_path):
        index, vectors = filled_index
        queries = vectors[:4] + 0.01
        before = exact_topk(index, queries, k=8)
        reopened = EmbeddingIndex.open(index.directory)
        after = exact_topk(reopened, queries, k=8)
        for b_hits, a_hits in zip(before, after):
            assert [h.key for h in b_hits] == [h.key for h in a_hits]
            np.testing.assert_allclose(
                [h.score for h in b_hits], [h.score for h in a_hits], rtol=0, atol=0
            )

    def test_invalid_k_and_dim(self, filled_index):
        index, _ = filled_index
        with pytest.raises(ValueError):
            exact_topk(index, np.zeros(12), k=0)
        with pytest.raises(ValueError, match="dimension"):
            exact_topk(index, np.zeros(5), k=1)


class TestIVFSearcher:
    def make_clustered_index(self, tmp_path, clusters=8, per_cluster=25, dim=16):
        rng = np.random.default_rng(3)
        centers = rng.normal(size=(clusters, dim)) * 4.0
        vectors = np.concatenate(
            [center + rng.normal(size=(per_cluster, dim)) * 0.3 for center in centers]
        )
        index = EmbeddingIndex.create(tmp_path / "ivf", dim=dim, shard_size=64)
        index.add([f"k{i}" for i in range(len(vectors))], vectors)
        index.save()
        return index, vectors

    def test_recall_on_clustered_corpus(self, tmp_path):
        index, vectors = self.make_clustered_index(tmp_path)
        searcher = IVFSearcher(num_centroids=16, nprobe=6, seed=0).fit(index)
        rng = np.random.default_rng(11)
        queries = vectors[rng.choice(len(vectors), size=20, replace=False)] + 0.05
        exact = exact_topk(index, queries, k=10)
        approx = searcher.search(queries, k=10)
        assert recall_at_k(exact, approx, k=10) >= 0.9

    def test_full_probe_equals_exact(self, tmp_path):
        index, vectors = self.make_clustered_index(tmp_path, clusters=4, per_cluster=10)
        searcher = IVFSearcher(num_centroids=4, nprobe=4, seed=0).fit(index)
        queries = vectors[:5]
        exact = exact_topk(index, queries, k=5)
        approx = searcher.search(queries, k=5, nprobe=4)
        assert recall_at_k(exact, approx, k=5) == 1.0

    def test_deterministic_given_seed(self, tmp_path):
        index, vectors = self.make_clustered_index(tmp_path, clusters=4, per_cluster=10)
        a = IVFSearcher(num_centroids=4, nprobe=2, seed=5).fit(index)
        b = IVFSearcher(num_centroids=4, nprobe=2, seed=5).fit(index)
        queries = vectors[:3]
        for hits_a, hits_b in zip(a.search(queries, k=4), b.search(queries, k=4)):
            assert [h.key for h in hits_a] == [h.key for h in hits_b]

    def test_needs_refit_after_index_growth(self, tmp_path):
        index, _ = self.make_clustered_index(tmp_path, clusters=2, per_cluster=5)
        searcher = IVFSearcher(num_centroids=2, seed=0).fit(index)
        assert not searcher.needs_refit(index)
        index.add(["extra"], np.random.default_rng(0).normal(size=(1, 16)))
        assert searcher.needs_refit(index)

    def test_needs_refit_after_count_neutral_mutation(self, tmp_path):
        """Remove one key + add another (len unchanged) must invalidate."""
        index, _ = self.make_clustered_index(tmp_path, clusters=2, per_cluster=5)
        searcher = IVFSearcher(num_centroids=2, seed=0).fit(index)
        before = len(index)
        index.remove(["k0"])
        index.add(["fresh"], np.random.default_rng(1).normal(size=(1, 16)))
        assert len(index) == before
        assert searcher.needs_refit(index)

    def test_needs_refit_after_vector_update(self, tmp_path):
        """Re-adding an existing key with a new vector must invalidate."""
        index, vectors = self.make_clustered_index(tmp_path, clusters=2, per_cluster=5)
        searcher = IVFSearcher(num_centroids=2, seed=0).fit(index)
        index.add(["k0"], -vectors[0][None, :])
        assert len(index) == len(vectors)
        assert searcher.needs_refit(index)

    def test_fit_skips_tombstoned_and_superseded_rows(self, tmp_path):
        rng = np.random.default_rng(4)
        index = EmbeddingIndex.create(tmp_path / "idx", dim=8, shard_size=4)
        stale = rng.normal(size=8)
        index.add(["dup", "gone", "live"], np.vstack([stale, rng.normal(size=8), rng.normal(size=8)]))
        index.save()
        index.add(["dup"], -stale[None, :])   # supersede
        index.remove(["gone"])                # tombstone
        searcher = IVFSearcher(num_centroids=1, nprobe=1, seed=0).fit(index)
        hits = searcher.search(stale, k=5)[0]
        by_key = {hit.key: hit.score for hit in hits}
        assert "gone" not in by_key
        assert by_key["dup"] == pytest.approx(-1.0, abs=1e-6)  # live vector, not stale

    def test_search_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            IVFSearcher().search(np.zeros(4), k=1)

    def test_fit_empty_index_raises(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "empty", dim=4)
        with pytest.raises(ValueError):
            IVFSearcher().fit(index)

    def test_kind_scoped_searcher(self, tmp_path):
        rng = np.random.default_rng(2)
        index = EmbeddingIndex.create(tmp_path / "idx", dim=8)
        index.add(["c0", "c1", "c2"], rng.normal(size=(3, 8)), kinds="circuit")
        index.add(["n0", "n1", "n2"], rng.normal(size=(3, 8)), kinds="cone")
        searcher = IVFSearcher(num_centroids=2, nprobe=2, seed=0, kind="cone").fit(index)
        hits = searcher.search(rng.normal(size=8), k=6)[0]
        assert {hit.key for hit in hits} <= {"n0", "n1", "n2"}


class TestRecallAtK:
    def test_recall_math(self, tmp_path):
        rng = np.random.default_rng(0)
        index = EmbeddingIndex.create(tmp_path / "idx", dim=4)
        index.add(["a", "b", "c"], rng.normal(size=(3, 4)))
        exact = exact_topk(index, rng.normal(size=(1, 4)), k=2)
        assert recall_at_k(exact, exact, k=2) == 1.0
        with pytest.raises(ValueError):
            recall_at_k(exact, [], k=2)
