"""Tests for AIG conversion and dataset statistics (repro.netlist.aig / .stats)."""

from __future__ import annotations

import pytest

from repro.expr import equivalent, khop_expression
from repro.netlist import (
    aggregate_statistics,
    aig_statistics,
    expression_token_lengths,
    extract_register_cones,
    local_expression_lookup,
    netlist_summary,
    source_statistics,
    to_aig,
)


def full_output_expression(netlist, net):
    """Fully expanded Boolean expression of a net in terms of PIs / register outputs."""
    lookup = local_expression_lookup(netlist)
    return khop_expression(net, lookup, k=10_000)


class TestToAIG:
    def test_only_aig_cell_types_used(self, comb_netlist):
        aig = to_aig(comb_netlist)
        allowed = {"AND2", "INV", "CONST0", "CONST1", "DFF", "DFFR", "DFFS"}
        assert set(aig.cell_type_counts()) <= allowed

    def test_aig_is_structurally_valid(self, comb_netlist):
        to_aig(comb_netlist).validate()

    def test_primary_inputs_preserved(self, comb_netlist):
        aig = to_aig(comb_netlist)
        assert set(aig.primary_inputs) == set(comb_netlist.primary_inputs)

    def test_functional_equivalence_on_tiny_netlist(self, tiny_netlist):
        aig = to_aig(tiny_netlist)
        original = full_output_expression(tiny_netlist, "n_out")
        # The AIG maps the original output net to a new internal name, recorded
        # as the (single) primary output of the lowered netlist.
        lowered = full_output_expression(aig, aig.primary_outputs[0])
        assert equivalent(original, lowered)

    def test_registers_copied_through(self, seq_netlist):
        aig = to_aig(seq_netlist)
        assert len(aig.registers) == len(seq_netlist.registers)
        assert {g.name for g in aig.registers} == {g.name for g in seq_netlist.registers}

    def test_block_labels_survive_lowering(self, comb_netlist):
        aig = to_aig(comb_netlist)
        original_blocks = {
            g.attributes.get("block")
            for g in comb_netlist.combinational_gates
            if g.attributes.get("block")
        }
        aig_blocks = {
            g.attributes.get("block")
            for g in aig.gates.values()
            if g.attributes.get("block")
        }
        assert original_blocks
        assert aig_blocks <= original_blocks
        assert len(aig_blocks) >= 1

    def test_structural_hashing_shares_subterms(self, library):
        """Two gates computing the same function must map to one AIG node."""
        from repro.netlist import Netlist

        netlist = Netlist("shared", library=library)
        netlist.add_primary_input("a")
        netlist.add_primary_input("b")
        netlist.add_gate("u1", "AND2_X1", ["a", "b"], "y1")
        netlist.add_gate("u2", "AND2_X1", ["b", "a"], "y2")
        netlist.add_primary_output("y1")
        netlist.add_primary_output("y2")
        aig = to_aig(netlist)
        assert aig_statistics(aig)["and_nodes"] == 1

    def test_statistics_totals(self, comb_netlist):
        aig = to_aig(comb_netlist)
        stats = aig_statistics(aig)
        assert stats["total"] == aig.num_gates
        assert stats["and_nodes"] + stats["inverters"] + stats["registers"] <= stats["total"]
        assert stats["and_nodes"] > 0
        assert stats["inverters"] > 0


class TestStatistics:
    def test_expression_token_lengths(self):
        lengths = expression_token_lengths(["a & b", "!((a ^ b) | c)"])
        assert len(lengths) == 2
        assert lengths[1] > lengths[0] > 0

    def test_source_statistics(self, seq_netlist):
        cones = extract_register_cones(seq_netlist)
        expressions = ["a & b", "a | !b", "(a ^ b) & c"]
        stats = source_statistics("unit", expressions, cones)
        assert stats.num_expressions == 3
        assert stats.num_cones == len(cones)
        assert stats.avg_cone_nodes == pytest.approx(
            sum(c.num_gates for c in cones) / len(cones)
        )
        row = stats.as_row()
        assert row["source"] == "unit"

    def test_source_statistics_empty(self):
        stats = source_statistics("empty", [], [])
        assert stats.num_expressions == 0
        assert stats.avg_expression_tokens == 0.0
        assert stats.avg_cone_nodes == 0.0

    def test_aggregate_statistics_weighted(self):
        a = source_statistics("a", ["x & y"] * 4, [])
        b = source_statistics("b", ["!((x ^ y) | z) & (w | v)"] * 8, [])
        total = aggregate_statistics([a, b])
        assert total.source == "Total"
        assert total.num_expressions == 12
        assert min(a.avg_expression_tokens, b.avg_expression_tokens) <= total.avg_expression_tokens
        assert total.avg_expression_tokens <= max(a.avg_expression_tokens, b.avg_expression_tokens)

    def test_netlist_summary(self, comb_netlist, seq_netlist):
        summary = netlist_summary([comb_netlist, seq_netlist])
        assert summary["designs"] == 2
        assert summary["total_gates"] == comb_netlist.num_gates + seq_netlist.num_gates
        assert summary["registers"] == len(seq_netlist.registers)

    def test_netlist_summary_empty(self):
        assert netlist_summary([])["designs"] == 0
