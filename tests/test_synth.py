"""Tests for logic synthesis: bit-blasting, technology mapping, optimisation."""

from __future__ import annotations

import pytest

from repro.expr import FALSE, TRUE, Var
from repro.netlist import Netlist
from repro.rtl import RTLModule, WBinary, WMux
from repro.synth import (
    bit_net,
    constant_bits,
    equality,
    optimize_netlist,
    remove_double_inverters,
    ripple_carry_add,
    shift_add_multiply,
    subtract,
    sweep_dead_gates,
    synthesize,
    unsigned_less_than,
    zero_extend,
)


def bits_to_int(bits, env):
    """Evaluate a little-endian bit vector of expressions to an integer."""
    value = 0
    for i, bit in enumerate(bits):
        if bit.evaluate(env):
            value |= 1 << i
    return value


def int_env(prefix, value, width):
    return {f"{prefix}{i}": bool((value >> i) & 1) for i in range(width)}


def var_vector(prefix, width):
    return [Var(f"{prefix}{i}") for i in range(width)]


def simulate(netlist: Netlist, inputs: dict) -> dict:
    """Simulate one combinational netlist evaluation (no registers)."""
    values = dict(inputs)
    values.setdefault("1'b0", False)
    values.setdefault("1'b1", True)
    for gate in netlist.topological_order():
        cell = netlist.cell_of(gate)
        if cell.is_sequential:
            continue
        operands = [gate.inputs[pin] for pin in cell.input_pins]
        expr = cell.local_expression(operands)
        values[gate.output] = expr.evaluate(values)
    return values


class TestBitBlastPrimitives:
    def test_constant_bits_round_trip(self):
        for value in (0, 1, 5, 10, 15):
            bits = constant_bits(value, 4)
            assert len(bits) == 4
            assert bits_to_int(bits, {}) == value

    def test_zero_extend_and_truncate(self):
        bits = zero_extend([TRUE, FALSE], 4)
        assert bits_to_int(bits, {}) == 1
        truncated = zero_extend(constant_bits(15, 4), 2)
        assert bits_to_int(truncated, {}) == 3

    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (7, 7), (6, 1), (7, 1)])
    def test_ripple_carry_add(self, a, b):
        width = 3
        bits = ripple_carry_add(var_vector("a", width), var_vector("b", width))
        env = {**int_env("a", a, width), **int_env("b", b, width)}
        assert bits_to_int(bits, env) == (a + b) % (1 << len(bits))

    @pytest.mark.parametrize("a,b", [(5, 3), (3, 5), (7, 0), (0, 7), (4, 4)])
    def test_subtract_modular(self, a, b):
        width = 3
        bits = subtract(var_vector("a", width), var_vector("b", width))
        env = {**int_env("a", a, width), **int_env("b", b, width)}
        assert bits_to_int(bits, env) % 8 == (a - b) % 8

    @pytest.mark.parametrize("a,b", [(0, 0), (2, 3), (3, 3), (1, 7), (7, 6)])
    def test_shift_add_multiply(self, a, b):
        width = 3
        bits = shift_add_multiply(var_vector("a", width), var_vector("b", width))
        env = {**int_env("a", a, width), **int_env("b", b, width)}
        assert bits_to_int(bits, env) == (a * b) % (1 << len(bits))

    @pytest.mark.parametrize("a,b", [(1, 2), (2, 1), (3, 3), (0, 7)])
    def test_comparisons(self, a, b):
        width = 3
        env = {**int_env("a", a, width), **int_env("b", b, width)}
        lt = unsigned_less_than(var_vector("a", width), var_vector("b", width))
        eq = equality(var_vector("a", width), var_vector("b", width))
        assert lt.evaluate(env) == (a < b)
        assert eq.evaluate(env) == (a == b)

    def test_bit_net_naming(self):
        assert bit_net("a", 0, 1) == "a"
        assert bit_net("a", 2, 4) == "a_2"


class TestSynthesize:
    def test_adder_module_is_functionally_correct(self):
        module = RTLModule("add3")
        a = module.add_input("a", 3)
        b = module.add_input("b", 3)
        module.add_output("s", 3)
        module.add_assign("s", WBinary("add", a, b), block="adder")
        netlist = synthesize(module).netlist
        netlist.validate()
        for av, bv in [(0, 0), (1, 2), (3, 5), (7, 7), (6, 3)]:
            inputs = {
                **{bit_net("a", i, 3): bool((av >> i) & 1) for i in range(3)},
                **{bit_net("b", i, 3): bool((bv >> i) & 1) for i in range(3)},
            }
            values = simulate(netlist, inputs)
            result = sum(
                (1 << i) for i in range(3) if values[f"{bit_net('s', i, 3)}__po"]
            )
            assert result == (av + bv) % 8

    def test_mux_module_is_functionally_correct(self):
        module = RTLModule("pick")
        sel = module.add_input("sel", 1)
        a = module.add_input("a", 2)
        b = module.add_input("b", 2)
        module.add_output("y", 2)
        module.add_assign("y", WMux(sel, a, b), block="control")
        netlist = synthesize(module).netlist
        for sv, av, bv in [(0, 1, 2), (1, 1, 2), (0, 3, 0), (1, 3, 0)]:
            inputs = {
                "sel": bool(sv),
                **{bit_net("a", i, 2): bool((av >> i) & 1) for i in range(2)},
                **{bit_net("b", i, 2): bool((bv >> i) & 1) for i in range(2)},
            }
            values = simulate(netlist, inputs)
            result = sum((1 << i) for i in range(2) if values[f"{bit_net('y', i, 2)}__po"])
            assert result == (av if sv else bv)

    def test_synthesis_result_reports(self, comb_module):
        result = synthesize(comb_module)
        assert result.num_gates == result.netlist.num_gates
        assert result.total_area == pytest.approx(result.netlist.total_area())
        assert result.estimated_power > 0.0
        assert sum(result.cell_counts.values()) == result.num_gates

    def test_block_labels_carried_onto_gates(self, comb_netlist):
        blocks = {g.attributes.get("block") for g in comb_netlist.combinational_gates}
        assert "adder" in blocks
        assert "comparator" in blocks

    def test_registers_carry_role_and_group(self, seq_netlist):
        for register in seq_netlist.registers:
            assert register.attributes.get("role") in ("state", "data")
            assert "register_group" in register.attributes

    def test_sequential_synthesis_produces_one_dff_per_register_bit(self, seq_module, seq_netlist):
        expected = sum(r.width for r in seq_module.registers)
        assert len(seq_netlist.registers) == expected

    def test_unassigned_output_raises(self):
        module = RTLModule("dangling")
        module.add_input("a", 1)
        module.add_output("y", 1)
        with pytest.raises((ValueError, KeyError)):
            synthesize(module)

    def test_gate_types_are_diverse(self, comb_netlist):
        """Post-mapping netlists must not be AIG-only (the paper's key motivation)."""
        types = set(comb_netlist.cell_type_counts())
        assert len(types - {"AND2", "INV"}) >= 3


class TestOptimization:
    def test_remove_double_inverters(self, library):
        netlist = Netlist("double_inv", library=library)
        netlist.add_primary_input("a")
        netlist.add_gate("inv1", "INV_X1", ["a"], "n1")
        netlist.add_gate("inv2", "INV_X1", ["n1"], "n2")
        netlist.add_gate("buf_out", "BUF_X1", ["n2"], "y")
        netlist.add_primary_output("y")
        removed = remove_double_inverters(netlist)
        assert removed >= 1
        netlist.validate()
        values = simulate(netlist, {"a": True})
        assert values["y"] is True

    def test_sweep_dead_gates(self, library):
        netlist = Netlist("dead", library=library)
        netlist.add_primary_input("a")
        netlist.add_gate("used", "INV_X1", ["a"], "y")
        netlist.add_gate("dead1", "INV_X1", ["a"], "unused1")
        netlist.add_gate("dead2", "BUF_X1", ["unused1"], "unused2")
        netlist.add_primary_output("y")
        removed = sweep_dead_gates(netlist)
        assert removed == 2
        assert set(netlist.gates) == {"used"}

    def test_optimize_netlist_preserves_outputs(self, comb_module):
        unoptimized = synthesize(comb_module, optimize=False).netlist
        optimized = optimize_netlist(unoptimized.copy())
        assert optimized.num_gates <= unoptimized.num_gates
        assert set(optimized.primary_outputs) == set(unoptimized.primary_outputs)
        optimized.validate()
