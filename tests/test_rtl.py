"""Tests for the RTL substrate: IR, text rendering and benchmark generators."""

from __future__ import annotations

import pytest

from repro.rtl import (
    BLOCK_LABELS,
    RTLError,
    RTLModule,
    SUITE_NAMES,
    WBinary,
    WConst,
    WMux,
    WSignal,
    WUnary,
    add_adder_block,
    add_comparator_block,
    add_fsm,
    add_multiplier_block,
    design_suite_of,
    generate_pretraining_corpus,
    generate_suite,
    make_controller,
    make_cpu_slice,
    make_datapath_block,
    make_gnnre_design,
    make_gnnre_suite,
    make_peripheral,
    module_statistics,
    render_module,
    render_register_cone,
)


class TestWordLevelIR:
    def test_add_input_output_wire(self):
        module = RTLModule("m")
        a = module.add_input("a", 4)
        y = module.add_output("y", 4)
        w = module.add_wire("t", 4)
        assert a.width == y.width == w.width == 4
        assert [p.name for p in module.inputs] == ["a"]
        assert [p.name for p in module.outputs] == ["y"]

    def test_duplicate_signal_rejected(self):
        module = RTLModule("m")
        module.add_input("a", 2)
        with pytest.raises(RTLError):
            module.add_wire("a", 2)

    def test_nonpositive_width_rejected(self):
        module = RTLModule("m")
        with pytest.raises(RTLError):
            module.add_input("a", 0)

    def test_unknown_operators_rejected(self):
        a = WSignal("a", 2)
        with pytest.raises(RTLError):
            WUnary("frobnicate", a)
        with pytest.raises(RTLError):
            WBinary("frobnicate", a, a)

    def test_binary_width_rules(self):
        a = WSignal("a", 3)
        b = WSignal("b", 5)
        assert WBinary("add", a, b).width == 5
        assert WBinary("mul", a, b).width == 8
        assert WBinary("eq", a, b).width == 1
        assert WBinary("lt", a, b).width == 1

    def test_mux_requires_single_bit_select(self):
        a = WSignal("a", 4)
        with pytest.raises(RTLError):
            WMux(WSignal("sel", 2), a, a)
        assert WMux(WSignal("sel", 1), a, a).width == 4

    def test_register_role_validation(self):
        module = RTLModule("m")
        a = module.add_input("a", 2)
        module.add_register("r_ok", 2, a, role="state")
        with pytest.raises(RTLError):
            module.add_register("r_bad", 2, a, role="wizard")

    def test_signals_collects_expression_support(self):
        expr = WBinary("add", WSignal("a", 3), WMux(WSignal("s", 1), WSignal("b", 3), WConst(0, 3)))
        assert expr.signals() == {"a", "s", "b"}

    def test_ordered_signals_is_deterministic_and_duplicate_free(self):
        # The ordered variant must not depend on the per-process hash seed
        # (cross-process checkpoint resume renders RTL text from it): the
        # order comes from the expression tree alone.
        expr = WBinary(
            "add",
            WMux(WSignal("s", 1), WSignal("b", 3), WSignal("a", 3)),
            WBinary("and", WSignal("a", 3), WSignal("zz", 3)),
        )
        first = expr.ordered_signals()
        assert sorted(first) == ["a", "b", "s", "zz"]
        for _ in range(5):
            assert expr.ordered_signals() == first
        assert set(first) == expr.signals()

    def test_signal_width_lookup(self):
        module = RTLModule("m")
        module.add_input("a", 7)
        assert module.signal_width("a") == 7

    def test_assign_order_is_dependency_consistent(self, comb_module):
        order = comb_module.assign_order()
        seen = {p.name for p in comb_module.inputs} | {r.name for r in comb_module.registers}
        for assign in order:
            assert assign.expr.signals() <= seen | {assign.target}
            seen.add(assign.target)

    def test_validate_passes_for_generators(self, comb_module, seq_module):
        comb_module.validate()
        seq_module.validate()


class TestTextRendering:
    def test_render_module_mentions_ports_and_registers(self, seq_module):
        text = render_module(seq_module)
        assert f"module {seq_module.name}" in text
        for port in seq_module.ports:
            assert port.name in text
        for register in seq_module.registers:
            assert register.name in text

    def test_render_register_cone_is_subset_of_module_text(self, seq_module):
        register = seq_module.registers[0]
        cone_text = render_register_cone(seq_module, register.name)
        assert register.name in cone_text
        assert len(cone_text) <= len(render_module(seq_module))

    def test_render_register_cone_unknown_register(self, seq_module):
        with pytest.raises((KeyError, RTLError, ValueError)):
            render_register_cone(seq_module, "not_a_register")

    def test_module_statistics_counts(self, seq_module):
        stats = module_statistics(seq_module)
        assert stats["registers"] == len(seq_module.registers)
        assert all(value >= 0 for value in stats.values())


class TestBlockBuilders:
    def test_adder_block_labels_assignments(self):
        module = RTLModule("m")
        a = module.add_input("a", 4)
        b = module.add_input("b", 4)
        out = add_adder_block(module, a, b)
        assert out.width >= 4
        assert any(assign.block == "adder" for assign in module.assigns)

    def test_multiplier_and_comparator_blocks(self):
        module = RTLModule("m")
        a = module.add_input("a", 3)
        b = module.add_input("b", 3)
        add_multiplier_block(module, a, b)
        add_comparator_block(module, a, b)
        blocks = {assign.block for assign in module.assigns}
        assert "multiplier" in blocks and "comparator" in blocks

    def test_fsm_adds_state_register(self):
        module = RTLModule("m")
        go = module.add_input("go", 1)
        stop = module.add_input("stop", 1)
        state = add_fsm(module, "st", num_states=4, trigger=go, reset=stop)
        assert state.width >= 2
        roles = {r.name: r.role for r in module.registers}
        assert roles["st"] == "state"

    def test_block_labels_cover_task1_classes(self):
        assert {"adder", "subtractor", "multiplier", "comparator", "control", "logic"} <= set(BLOCK_LABELS)


class TestGenerators:
    def test_gnnre_suite_size_and_block_diversity(self):
        suite = make_gnnre_suite(num_designs=3, seed=7)
        assert len(suite) == 3
        for module in suite:
            module.validate()
            blocks = {assign.block for assign in module.assigns if assign.block}
            assert len(blocks) >= 4

    def test_gnnre_designs_differ_across_indices(self):
        a = make_gnnre_design(1, seed=7)
        b = make_gnnre_design(2, seed=7)
        assert a.name != b.name

    def test_sequential_generators_have_state_and_data_registers(self):
        for factory in (make_controller, make_peripheral, make_cpu_slice, make_datapath_block):
            module = factory(f"gen_{factory.__name__}", 3)
            module.validate()
            roles = {r.role for r in module.registers}
            assert "data" in roles
            assert len(module.registers) >= 2

    def test_generate_suite_known_names(self):
        for suite in SUITE_NAMES:
            modules = generate_suite(suite, num_designs=1, seed=3)
            assert len(modules) == 1
            modules[0].validate()

    def test_generate_suite_unknown_name(self):
        with pytest.raises((KeyError, ValueError)):
            generate_suite("not_a_suite", num_designs=1)

    def test_pretraining_corpus_covers_all_suites(self):
        corpus = generate_pretraining_corpus(designs_per_suite=1, seed=0)
        assert set(corpus) == set(SUITE_NAMES)
        for modules in corpus.values():
            assert len(modules) == 1

    def test_design_suite_of_recognises_generated_names(self):
        corpus = generate_pretraining_corpus(designs_per_suite=1, seed=0)
        for suite, modules in corpus.items():
            for module in modules:
                assert design_suite_of(module.name) == suite
        assert design_suite_of(make_gnnre_design(1, seed=1).name) == "gnnre"
        assert design_suite_of("totally_custom") == "unknown"
