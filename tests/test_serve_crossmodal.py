"""Tests for the cross-modal retrieval engine (``repro.serve.crossmodal``).

Covers the (key, kind) row-identity semantics the multimodal index relies
on, the projection heads and their sidecar persistence, the kind-pair query
API, and the edge cases: empty target kinds, modality-encoder fingerprint
mismatches, and IVF refits after one modality's rows are removed.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import NetTAGConfig, NetTAGPipeline
from repro.rtl import make_controller
from repro.serve import (
    CIRCUIT_KIND,
    CONE_KIND,
    LAYOUT_KIND,
    RTL_KIND,
    CrossModalEncoder,
    EmbeddingIndex,
    ModalityProjection,
    NetTAGService,
    exact_topk,
)


@pytest.fixture(scope="module", autouse=True)
def _reference_backend():
    """Sidecar round-trips assert 1e-9-level equality between saved and
    reloaded projections applied to freshly encoded queries — a float64
    reference-backend contract (float64 projection coefficients applied to
    float32 re-encodes round differently at the 1e-7 level)."""
    from repro.nn import use_backend

    with use_backend("reference"):
        yield


@pytest.fixture(scope="module")
def mm_pipeline():
    """A pipeline preprocessed on two small controllers (alignment data on)."""
    pipeline = NetTAGPipeline(NetTAGConfig.fast())
    modules = [
        make_controller("xm_a", seed=21, num_states=4, data_width=4),
        make_controller("xm_b", seed=22, num_states=5, data_width=3),
    ]
    pipeline.designs = [pipeline.preprocess_module(m, suite="test") for m in modules]
    return pipeline


@pytest.fixture(scope="module")
def mm_index(mm_pipeline, tmp_path_factory):
    """A multimodal index + encoder built from the pipeline corpus."""
    directory = tmp_path_factory.mktemp("crossmodal") / "index"
    index, encoder = mm_pipeline.build_multimodal_index(directory)
    return directory, index, encoder


# ----------------------------------------------------------------------
# (key, kind) row identity in the index
# ----------------------------------------------------------------------
class TestKeyKindIdentity:
    def test_same_key_under_different_kinds_holds_separate_rows(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=3)
        index.add(["k"], np.array([[1.0, 0.0, 0.0]]), kinds="cone")
        index.add(["k"], np.array([[0.0, 1.0, 0.0]]), kinds="rtl")
        assert len(index) == 2
        np.testing.assert_allclose(index.get("k", kind="cone"), [1.0, 0.0, 0.0])
        np.testing.assert_allclose(index.get("k", kind="rtl"), [0.0, 1.0, 0.0])
        # Re-adding within a kind still supersedes that kind's row only.
        index.add(["k"], np.array([[0.5, 0.5, 0.0]]), kinds="cone")
        assert len(index) == 2
        np.testing.assert_allclose(index.get("k", kind="cone"), [0.5, 0.5, 0.0])
        np.testing.assert_allclose(index.get("k", kind="rtl"), [0.0, 1.0, 0.0])

    def test_remove_with_kind_keeps_other_modalities(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=2)
        index.add(["k", "k", "other"], np.eye(3, 2), kinds=["cone", "rtl", "cone"])
        assert index.remove(["k"], kind="rtl") == 1
        assert index.get("k", kind="rtl") is None
        assert index.get("k", kind="cone") is not None
        assert "k" in index
        # Kind-less remove kills the remaining kinds.
        assert index.remove(["k"]) == 1
        assert "k" not in index

    def test_compact_preserves_per_kind_rows(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=2, shard_size=2)
        index.add(["k", "k"], np.array([[1.0, 0.0], [0.0, 1.0]]), kinds=["cone", "rtl"])
        index.remove(["k"], kind="rtl")
        dropped = index.compact()
        assert dropped["rows_after"] == 1
        np.testing.assert_allclose(index.get("k", kind="cone"), [1.0, 0.0])
        assert index.get("k", kind="rtl") is None

    def test_search_masks_superseded_rows_within_kind_only(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=2)
        index.add(["k"], np.array([[1.0, 0.0]]), kinds="cone")
        index.add(["k"], np.array([[1.0, 0.0]]), kinds="rtl")
        hits = exact_topk(index, np.array([[1.0, 0.0]]), k=5)[0]
        assert [(h.key, h.kind) for h in hits] == [("k", "cone"), ("k", "rtl")]

    def test_legacy_v1_manifest_tombstones_cover_every_kind(self, tmp_path):
        index = EmbeddingIndex.create(tmp_path / "idx", dim=2)
        index.add(["k", "live"], np.eye(2), kinds=["cone", "cone"])
        index.save()
        manifest_path = tmp_path / "idx" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        manifest["tombstones"] = ["k"]  # legacy key-only tombstone
        manifest_path.write_text(json.dumps(manifest))
        reopened = EmbeddingIndex.open(tmp_path / "idx")
        assert "k" not in reopened
        assert "live" in reopened
        # Re-adding under one kind revives that kind only.
        reopened.add(["k"], np.array([[0.0, 1.0]]), kinds="rtl")
        assert reopened.get("k", kind="rtl") is not None
        assert reopened.get("k", kind="cone") is None


# ----------------------------------------------------------------------
# Projection heads
# ----------------------------------------------------------------------
class TestModalityProjection:
    def test_fit_interpolates_aligned_pairs(self, fresh_rng):
        embeddings = fresh_rng.normal(size=(20, 6))
        targets = fresh_rng.normal(size=(20, 9))
        projection = ModalityProjection.fit("rtl", embeddings, targets, l2=1e-9)
        np.testing.assert_allclose(projection.project(embeddings), targets, atol=1e-5)

    def test_payload_round_trip(self, fresh_rng):
        embeddings = fresh_rng.normal(size=(8, 4))
        targets = fresh_rng.normal(size=(8, 5))
        projection = ModalityProjection.fit("layout", embeddings, targets)
        rebuilt = ModalityProjection.from_payload(projection.to_payload())
        np.testing.assert_array_equal(
            rebuilt.project(embeddings), projection.project(embeddings)
        )
        assert rebuilt.modality == "layout"
        assert rebuilt.gamma == projection.gamma

    def test_shape_errors(self, fresh_rng):
        with pytest.raises(ValueError):
            ModalityProjection.fit("rtl", np.zeros((3, 4)), np.zeros((2, 5)))
        projection = ModalityProjection.fit(
            "rtl", fresh_rng.normal(size=(4, 3)), fresh_rng.normal(size=(4, 2))
        )
        with pytest.raises(ValueError):
            projection.project(np.zeros((1, 7)))


# ----------------------------------------------------------------------
# Multimodal index build + retrieval
# ----------------------------------------------------------------------
class TestMultimodalBuild:
    def test_every_modality_indexed_under_shared_keys(self, mm_pipeline, mm_index):
        _, index, _ = mm_index
        kinds = index.stats()["kinds"]
        items = mm_pipeline.multimodal_items()
        assert kinds[CIRCUIT_KIND] == len(mm_pipeline.designs)
        assert kinds[CONE_KIND] == len(items)
        assert kinds[RTL_KIND] == sum(1 for it in items if it.rtl_text is not None)
        assert kinds[LAYOUT_KIND] == sum(1 for it in items if it.layout is not None)
        item = items[0]
        for kind in (CONE_KIND, RTL_KIND, LAYOUT_KIND):
            assert index.get(item.key, kind=kind) is not None

    def test_aligned_pair_is_retrieved_across_modalities(self, mm_pipeline, mm_index):
        _, index, encoder = mm_index
        items = [it for it in mm_pipeline.multimodal_items() if it.rtl_text is not None]
        queries = encoder.encode_queries(RTL_KIND, [it.rtl_text for it in items])
        hits = exact_topk(index, queries, k=10, kind=CONE_KIND)
        # Aligned-or-tied: duplicates share byte-identical vectors, so accept
        # any hit whose stored cone vector equals the aligned cone's.
        recalled = 0
        for item, row_hits in zip(items, hits):
            aligned = np.asarray(index.get(item.key, kind=CONE_KIND), dtype=np.float32)
            for hit in row_hits:
                stored = index.get(hit.key, kind=CONE_KIND)
                if stored is None:
                    continue
                got = np.asarray(stored, dtype=np.float32)
                if got.shape == aligned.shape and (got == aligned).all():
                    recalled += 1
                    break
        assert recalled / len(items) >= 0.8

    def test_cached_stage_reuses_rows(self, mm_pipeline, tmp_path):
        pipeline = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=tmp_path / "cache")
        pipeline.designs = mm_pipeline.designs
        first, _ = pipeline.build_multimodal_index(tmp_path / "idx1")
        assert not pipeline.summary.stage_timings[-1].cached
        second, _ = pipeline.build_multimodal_index(tmp_path / "idx2")
        assert pipeline.summary.stage_timings[-1].cached
        key = mm_pipeline.multimodal_items()[0].key
        np.testing.assert_array_equal(
            first.get(key, kind=RTL_KIND), second.get(key, kind=RTL_KIND)
        )

    def test_index_fingerprints_include_modality_encoders(self, mm_pipeline, mm_index):
        _, index, encoder = mm_index
        assert index.fingerprints["rtl_encoder"] == encoder.fingerprints()["rtl_encoder"]
        assert index.fingerprints["layout_encoder"] == encoder.fingerprints()["layout_encoder"]
        assert index.fingerprints["model"] == mm_pipeline.model.fingerprint()


# ----------------------------------------------------------------------
# Sidecar persistence and fingerprint discipline
# ----------------------------------------------------------------------
class TestSidecar:
    def test_round_trip_preserves_projections_and_encoders(self, mm_pipeline, mm_index):
        directory, _, encoder = mm_index
        reloaded = CrossModalEncoder.load(directory, mm_pipeline.model)
        assert sorted(reloaded.projections) == sorted(encoder.projections)
        items = [it for it in mm_pipeline.multimodal_items() if it.rtl_text][:3]
        texts = [it.rtl_text for it in items]
        np.testing.assert_allclose(
            reloaded.encode_queries(RTL_KIND, texts),
            encoder.encode_queries(RTL_KIND, texts),
            atol=1e-9,
        )
        layouts = [it.layout for it in mm_pipeline.multimodal_items()[:2]]
        np.testing.assert_allclose(
            reloaded.encode_queries(LAYOUT_KIND, layouts),
            encoder.encode_queries(LAYOUT_KIND, layouts),
            atol=1e-9,
        )

    def test_missing_sidecar_raises(self, small_model, tmp_path):
        NetTAGService.create_index(small_model, tmp_path / "plain").save()
        assert not CrossModalEncoder.available(tmp_path / "plain")
        with pytest.raises(FileNotFoundError):
            CrossModalEncoder.load(tmp_path / "plain", small_model)

    def test_foreign_model_warns_on_load(self, mm_index, fast_config):
        from repro.core import NetTAG

        directory, _, _ = mm_index
        other = NetTAG(fast_config, rng=np.random.default_rng(12345))
        with pytest.warns(UserWarning, match="written by model"):
            CrossModalEncoder.load(directory, other)

    def test_modality_encoder_fingerprint_mismatch_warns(self, mm_pipeline, mm_index):
        from repro.encoders import RTLEncoder

        _, _, encoder = mm_index
        tampered = CrossModalEncoder(
            mm_pipeline.model,
            rtl_encoder=RTLEncoder(rng=np.random.default_rng(999)),
            layout_encoder=encoder.layout_encoder,
            projections=dict(encoder.projections),
        )
        with pytest.warns(UserWarning, match="rtl projection was fitted against"):
            tampered.check_projection_fingerprints()

    def test_matching_fingerprints_do_not_warn(self, mm_index):
        import warnings

        _, _, encoder = mm_index
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            encoder.check_projection_fingerprints()


# ----------------------------------------------------------------------
# Kind-pair service API and edge cases
# ----------------------------------------------------------------------
class TestServiceQueries:
    @pytest.fixture()
    def service(self, mm_pipeline, mm_index):
        directory, _, _ = mm_index
        svc = mm_pipeline.serve(index=directory)
        yield svc
        svc.close()

    def test_rtl_query_returns_ranked_cones(self, mm_pipeline, service):
        item = next(it for it in mm_pipeline.multimodal_items() if it.rtl_text)
        hits = service.query_rtl(item.rtl_text, to_kind=CONE_KIND, k=4)
        assert len(hits) == 4
        assert all(hit.kind == CONE_KIND for hit in hits)
        assert hits[0].score >= hits[-1].score

    def test_layout_query_targets_rtl_namespace(self, mm_pipeline, service):
        item = next(it for it in mm_pipeline.multimodal_items() if it.layout is not None)
        hits = service.query_layout(item.layout, to_kind=RTL_KIND, k=3)
        assert len(hits) == 3
        assert all(hit.kind == RTL_KIND for hit in hits)

    def test_netlist_side_kinds_work_without_crossmodal(self, mm_pipeline, mm_index):
        directory, _, _ = mm_index
        service = mm_pipeline.serve(index=directory, multimodal=False)
        try:
            assert service.crossmodal is None
            item = mm_pipeline.multimodal_items()[0]
            hits = service.query_modal(item.cone, CONE_KIND, to_kind=CONE_KIND, k=2)
            assert len(hits) == 2
            with pytest.raises(RuntimeError, match="cross-modal encoder"):
                service.query_modal("always @(posedge clk)", RTL_KIND)
        finally:
            service.close()

    def test_concurrent_mixed_modality_queries(self, mm_pipeline, service):
        items = [it for it in mm_pipeline.multimodal_items() if it.rtl_text][:6]
        futures = []
        for item in items:
            futures.append(service.submit_query_modal(item.rtl_text, RTL_KIND, k=3))
            futures.append(service.submit_query_modal(item.cone, CONE_KIND, k=3))
        results = [future.result(timeout=30) for future in futures]
        assert all(len(hits) == 3 for hits in results)

    def test_empty_target_kind_returns_no_hits(self, mm_pipeline, tmp_path):
        # A cone-only index: rtl/layout namespaces exist as *query* sides but
        # hold no rows, so exact retrieval returns an empty ranking.
        pipeline = NetTAGPipeline(NetTAGConfig.fast())
        pipeline.designs = mm_pipeline.designs
        index, encoder = pipeline.build_multimodal_index(
            tmp_path / "partial", modalities=(CONE_KIND, RTL_KIND)
        )
        service = NetTAGService(pipeline.model, index=index, crossmodal=encoder)
        try:
            item = pipeline.multimodal_items()[0]
            assert service.query_modal(item.cone, CONE_KIND, to_kind=LAYOUT_KIND, k=3) == []
            # The approximate path cannot fit a coarse quantiser over an
            # empty namespace and says so instead of guessing.
            with pytest.raises(ValueError, match="empty"):
                service.query_modal(
                    item.cone, CONE_KIND, to_kind=LAYOUT_KIND, k=3, approximate=True
                )
        finally:
            service.close()

    def test_ivf_refit_after_one_modalitys_rows_are_removed(self, mm_pipeline, tmp_path):
        pipeline = NetTAGPipeline(NetTAGConfig.fast())
        pipeline.designs = mm_pipeline.designs
        index, encoder = pipeline.build_multimodal_index(tmp_path / "refit")
        service = NetTAGService(pipeline.model, index=index, crossmodal=encoder)
        try:
            items = [it for it in pipeline.multimodal_items() if it.rtl_text]
            searcher = service.fit_searcher(num_centroids=4, nprobe=4, kind=RTL_KIND)
            assert not searcher.needs_refit(index)
            removed_keys = [it.key for it in items[:2]]
            assert index.remove(removed_keys, kind=RTL_KIND) == 2
            # The generation moved: the fitted searcher is stale and the
            # service refits before answering, so removed rtl rows can never
            # surface (their cone/layout partners stay live).
            assert searcher.needs_refit(index)
            hits = service.query_modal(
                items[2].rtl_text, RTL_KIND, to_kind=RTL_KIND, k=len(items),
                approximate=True,
            )
            assert removed_keys[0] not in {hit.key for hit in hits}
            assert index.get(removed_keys[0], kind=CONE_KIND) is not None
            assert service.searcher is not searcher
        finally:
            service.close()

    def test_stats_report_crossmodal_state(self, service):
        report = service.stats()
        assert sorted(report["crossmodal"]["modalities"]) == [LAYOUT_KIND, RTL_KIND]
        assert "rtl_encoder" in report["crossmodal"]["fingerprints"]


class TestAddMultimodal:
    def test_ingest_refits_and_persists_the_sidecar(self, mm_pipeline, tmp_path):
        """add_multimodal rewrites the on-disk heads it projected rows with."""
        from repro.serve import NetTAGService

        pipeline = NetTAGPipeline(NetTAGConfig.fast())
        pipeline.designs = mm_pipeline.designs[:1]
        index, encoder = pipeline.build_multimodal_index(tmp_path / "grow")
        stale = CrossModalEncoder.load(tmp_path / "grow", pipeline.model)
        with NetTAGService(pipeline.model, index=index, crossmodal=encoder) as service:
            extra = mm_pipeline.designs[1]
            added = service.add_multimodal(
                [d.netlist for d in mm_pipeline.designs],
                mm_pipeline.multimodal_items(mm_pipeline.designs),
            )
            assert added > 0
        reloaded = CrossModalEncoder.load(tmp_path / "grow", pipeline.model)
        # The sidecar now holds the refitted (larger-anchor) heads, not the
        # ones from the initial single-design build.
        assert (
            reloaded.projection(RTL_KIND).num_anchors
            == encoder.projection(RTL_KIND).num_anchors
            > stale.projection(RTL_KIND).num_anchors
        )
        assert extra.netlist.name in index

    def test_invalid_modal_submission_fails_on_the_caller_thread(self, mm_pipeline, mm_index):
        directory, _, _ = mm_index
        service = mm_pipeline.serve(index=directory)
        try:
            with pytest.raises(ValueError, match="unknown query modality"):
                service.submit_query_modal("x", "hologram")
        finally:
            service.close()

    def test_unsupported_source_modality_fails_at_submit(self, mm_pipeline, tmp_path):
        """A layout-only sidecar rejects rtl queries on the caller thread."""
        from repro.serve import NetTAGService

        pipeline = NetTAGPipeline(NetTAGConfig.fast())
        pipeline.designs = mm_pipeline.designs
        index, encoder = pipeline.build_multimodal_index(
            tmp_path / "no-rtl", modalities=(CONE_KIND, LAYOUT_KIND)
        )
        assert not encoder.supports(RTL_KIND) and encoder.supports(LAYOUT_KIND)
        with NetTAGService(pipeline.model, index=index, crossmodal=encoder) as service:
            with pytest.raises(RuntimeError, match="without that modality"):
                service.query_rtl("assign x = a;", k=2)
            # Co-flushed legitimate queries are unaffected.
            item = pipeline.multimodal_items()[0]
            assert len(service.query_layout(item.layout, to_kind=CONE_KIND, k=2)) == 2

    def test_incremental_ingest_without_existing_keys_is_rejected(self, mm_pipeline, tmp_path):
        """Refitting heads while old projected rows stay indexed is refused."""
        from repro.serve import NetTAGService

        pipeline = NetTAGPipeline(NetTAGConfig.fast())
        pipeline.designs = mm_pipeline.designs
        index, encoder = pipeline.build_multimodal_index(tmp_path / "full")
        with NetTAGService(pipeline.model, index=index, crossmodal=encoder) as service:
            only_second = [mm_pipeline.designs[1]]
            with pytest.raises(ValueError, match="pass the full corpus"):
                service.add_multimodal(
                    [d.netlist for d in only_second],
                    mm_pipeline.multimodal_items(only_second),
                )

    def test_unknown_target_kind_is_rejected_at_submit(self, mm_pipeline, mm_index):
        directory, _, _ = mm_index
        service = mm_pipeline.serve(index=directory)
        try:
            item = mm_pipeline.multimodal_items()[0]
            with pytest.raises(ValueError, match="unknown target kind"):
                service.query_modal(item.cone, CONE_KIND, to_kind="layouts")
        finally:
            service.close()
