"""Tests for truth tables, equivalence checking and expression statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr import (
    And,
    Var,
    Xor,
    count_operators,
    equivalent,
    evaluate_batch,
    parse,
    satisfying_fraction,
    signature,
    truth_table,
)
from repro.expr.evaluate import MAX_SUPPORT_FOR_TRUTH_TABLE


class TestTruthTable:
    def test_and_truth_table(self):
        variables, table = truth_table(And(Var("a"), Var("b")))
        assert variables == ("a", "b")
        np.testing.assert_array_equal(table, [False, False, False, True])

    def test_xor_truth_table(self):
        _, table = truth_table(Xor(Var("a"), Var("b")))
        np.testing.assert_array_equal(table, [False, True, True, False])

    def test_explicit_variable_order(self):
        variables, table = truth_table(Var("b"), variables=["a", "b"])
        assert variables == ("a", "b")
        np.testing.assert_array_equal(table, [False, True, False, True])

    def test_support_cap(self):
        expr = And(*[Var(f"v{i}") for i in range(MAX_SUPPORT_FOR_TRUTH_TABLE + 1)])
        with pytest.raises(ValueError):
            truth_table(expr)


class TestEquivalence:
    def test_de_morgan_equivalence(self):
        assert equivalent(parse("!(a & b)"), parse("!a | !b"))

    def test_non_equivalent(self):
        assert not equivalent(parse("a & b"), parse("a | b"))

    def test_equivalence_over_different_supports(self):
        # b & !b == 0 regardless of a.
        assert equivalent(parse("b & !b"), parse("a & !a"))

    def test_signature_matches_for_equivalent_expressions(self):
        variables = ("a", "b")
        assert signature(parse("!(a & b)"), variables) == signature(parse("!a | !b"), variables)

    def test_signature_distinguishes_functions(self):
        variables = ("a", "b")
        assert signature(parse("a & b"), variables) != signature(parse("a | b"), variables)


class TestStatistics:
    def test_satisfying_fraction(self):
        assert satisfying_fraction(parse("a & b")) == pytest.approx(0.25)
        assert satisfying_fraction(parse("a | b")) == pytest.approx(0.75)
        assert satisfying_fraction(parse("a ^ b")) == pytest.approx(0.5)

    def test_evaluate_batch(self):
        expr = parse("a & !b")
        results = evaluate_batch(expr, [{"a": True, "b": False}, {"a": True, "b": True}])
        assert results == [True, False]

    def test_count_operators(self):
        counts = count_operators(parse("!(a & b) | (a ^ b)"))
        assert counts["var"] == 4
        assert counts["not"] == 1
        assert counts["and"] == 1
        assert counts["xor"] == 1
        assert counts["or"] == 1
