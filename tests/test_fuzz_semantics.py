"""Differential fuzzing of the netlist substrates.

Seeded random combinational netlists are pushed through two independent code
paths and the results must agree:

* **Syntax**: ``write_verilog`` → ``read_verilog`` must round-trip to an
  isomorphic netlist (here: structurally equal — gate names survive the
  renderer, so isomorphism collapses to per-gate pin-map equality).
* **Semantics**: lowering to an AIG (``to_aig``) must preserve the Boolean
  function — gate-level simulation of the original netlist and of its AIG
  agree on random input vectors, output for output.

The default sweep keeps tier-1 fast; ``-m slow`` runs a deeper one (more and
larger netlists, more vectors).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from repro.cells import NANGATE45
from repro.netlist import Netlist, read_verilog, to_aig, write_verilog


# Combinational single-output cell types worth fuzzing (every arity and the
# compound AOI/OAI/MUX/adder functions); constants exercise the tie cells.
_FUZZ_CELLS = [
    cell.name
    for cell in NANGATE45
    if not cell.is_sequential and cell.drive_strength == 1
]


def random_combinational_netlist(
    rng: np.random.Generator,
    num_inputs: int = 4,
    num_gates: int = 12,
    name: str = "fuzz",
) -> Netlist:
    """A random combinational DAG over the NanGate45-like library.

    Gates only consume already-driven nets (primary inputs or earlier gate
    outputs), so the result is acyclic by construction; every leaf-level
    check (`validate`) still runs in the tests.
    """
    netlist = Netlist(name, library=NANGATE45)
    nets: List[str] = []
    for i in range(num_inputs):
        net = f"i{i}"
        netlist.add_primary_input(net)
        nets.append(net)
    for g in range(num_gates):
        cell_name = _FUZZ_CELLS[int(rng.integers(len(_FUZZ_CELLS)))]
        cell = NANGATE45.cell(cell_name)
        if cell.num_inputs > 0:
            picks = rng.integers(len(nets), size=cell.num_inputs)
            inputs = [nets[int(p)] for p in picks]
        else:
            inputs = []
        output = f"n{g}"
        netlist.add_gate(f"g{g}", cell_name, inputs, output)
        nets.append(output)
    # Expose a few of the last gate outputs (guaranteed non-input nets).
    num_outputs = int(rng.integers(1, 4))
    for net in nets[-num_outputs:]:
        if net not in netlist.primary_inputs:
            netlist.add_primary_output(net)
    if not netlist.primary_outputs:
        netlist.add_primary_output(nets[-1])
    return netlist


def simulate(netlist: Netlist, vectors: np.ndarray) -> np.ndarray:
    """Direct gate-level simulation via each cell's local Boolean function.

    ``vectors`` is ``(num_vectors, num_inputs)`` over the netlist's primary
    inputs (in order); returns ``(num_vectors, num_outputs)`` over the primary
    outputs (in order).
    """
    outputs = np.zeros((len(vectors), len(netlist.primary_outputs)), dtype=bool)
    order = netlist.topological_order()
    for row, vector in enumerate(vectors):
        values: Dict[str, bool] = {
            net: bool(bit) for net, bit in zip(netlist.primary_inputs, vector)
        }
        for gate in order:
            cell = netlist.cell_of(gate)
            expression = cell.local_expression()
            assignment = {pin: values[net] for pin, net in gate.inputs.items()}
            values[gate.output] = bool(expression.evaluate(assignment))
        for column, net in enumerate(netlist.primary_outputs):
            outputs[row, column] = values[net]
    return outputs


def assert_isomorphic(a: Netlist, b: Netlist) -> None:
    """Structural equality: same ports, same gates, same pin-level wiring."""
    assert a.primary_inputs == b.primary_inputs
    assert a.primary_outputs == b.primary_outputs
    assert set(a.gates) == set(b.gates)
    for name, gate in a.gates.items():
        other = b.gates[name]
        assert gate.cell_name == other.cell_name, name
        assert gate.inputs == other.inputs, name
        assert gate.output == other.output, name


def _round_trip_case(seed: int, num_inputs: int, num_gates: int) -> None:
    rng = np.random.default_rng(seed)
    netlist = random_combinational_netlist(rng, num_inputs, num_gates, name=f"fz{seed}")
    netlist.validate()
    text = write_verilog(netlist)
    parsed = read_verilog(text, from_string=True)
    parsed.validate()
    assert_isomorphic(netlist, parsed)


def _aig_equivalence_case(seed: int, num_inputs: int, num_gates: int,
                          num_vectors: int) -> None:
    rng = np.random.default_rng(seed)
    netlist = random_combinational_netlist(rng, num_inputs, num_gates, name=f"fz{seed}")
    aig = to_aig(netlist)
    aig.validate()
    # The AIG must only use inverter/and/buffer/constant primitives.
    for gate in aig.gates.values():
        assert aig.cell_of(gate).function in ("inv", "and", "buf", "const0", "const1")
    vectors = rng.integers(0, 2, size=(num_vectors, len(netlist.primary_inputs)))
    want = simulate(netlist, vectors)
    got = simulate(aig, vectors)
    np.testing.assert_array_equal(
        got, want,
        err_msg=f"AIG of seed-{seed} netlist disagrees with gate-level simulation",
    )


class TestFuzzRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_emit_parse_round_trip_is_isomorphic(self, seed):
        _round_trip_case(seed, num_inputs=3 + seed % 4, num_gates=6 + 3 * seed)

    def test_round_trip_preserves_semantics_too(self):
        rng = np.random.default_rng(99)
        netlist = random_combinational_netlist(rng, 4, 15, name="fz99")
        parsed = read_verilog(write_verilog(netlist), from_string=True)
        vectors = rng.integers(0, 2, size=(8, 4))
        np.testing.assert_array_equal(simulate(parsed, vectors), simulate(netlist, vectors))


class TestFuzzAIGEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_aig_matches_gate_level_simulation(self, seed):
        _aig_equivalence_case(
            seed + 100, num_inputs=3 + seed % 4, num_gates=6 + 3 * seed, num_vectors=8
        )


@pytest.mark.slow
class TestFuzzDeepSweep:
    """Wider and deeper differential sweep (opt in with ``-m slow``)."""

    @pytest.mark.parametrize("seed", range(40))
    def test_round_trip_sweep(self, seed):
        _round_trip_case(seed + 1000, num_inputs=3 + seed % 6, num_gates=10 + 2 * seed)

    @pytest.mark.parametrize("seed", range(40))
    def test_aig_equivalence_sweep(self, seed):
        _aig_equivalence_case(
            seed + 2000,
            num_inputs=3 + seed % 6,
            num_gates=10 + 2 * seed,
            num_vectors=32,
        )
