"""Tests for the Boolean rewrite rules: every rule must preserve equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import And, Ite, Not, Or, Var, Xor, equivalent, parse, random_equivalent, simplify_constants
from repro.expr.transform import (
    RULE_NAMES,
    absorption,
    associative,
    commutative,
    de_morgan,
    distributive,
    double_negation,
    idempotence,
    identity_constant,
    ite_expansion,
    xnor_expansion,
    xor_expansion,
)


RNG = np.random.default_rng(0)


class TestIndividualRules:
    def test_de_morgan_and(self):
        expr = Not(And(Var("a"), Var("b")))
        rewritten = de_morgan(expr, RNG)
        assert rewritten is not None
        assert equivalent(expr, rewritten)
        assert isinstance(rewritten, Or)

    def test_de_morgan_or_inverse_direction(self):
        expr = Or(Not(Var("a")), Not(Var("b")))
        rewritten = de_morgan(expr, RNG)
        assert rewritten is not None
        assert equivalent(expr, rewritten)

    def test_double_negation_collapses(self):
        expr = Not(Not(Var("a")))
        assert double_negation(expr, RNG) == Var("a")

    def test_commutative_preserves_function(self):
        expr = And(Var("a"), Var("b"), Var("c"))
        rewritten = commutative(expr, np.random.default_rng(5))
        assert rewritten is not None
        assert equivalent(expr, rewritten)

    def test_associative_flatten_and_group(self):
        nested = And(Var("a"), And(Var("b"), Var("c")))
        flattened = associative(nested, RNG)
        assert flattened is not None and equivalent(nested, flattened)
        flat = And(Var("a"), Var("b"), Var("c"))
        grouped = associative(flat, RNG)
        assert grouped is not None and equivalent(flat, grouped)

    def test_distributive(self):
        expr = And(Var("a"), Or(Var("b"), Var("c")))
        rewritten = distributive(expr, RNG)
        assert rewritten is not None and equivalent(expr, rewritten)

    def test_xor_and_xnor_expansion(self):
        xor = Xor(Var("a"), Var("b"))
        assert equivalent(xor, xor_expansion(xor, RNG))
        xnor = Not(Xor(Var("a"), Var("b")))
        assert equivalent(xnor, xnor_expansion(xnor, RNG))

    def test_ite_expansion(self):
        expr = Ite(Var("s"), Var("a"), Var("b"))
        assert equivalent(expr, ite_expansion(expr, RNG))

    def test_absorption(self):
        expr = Or(Var("a"), And(Var("a"), Var("b")))
        assert absorption(expr, RNG) == Var("a")

    def test_idempotence_and_identity(self):
        var = Var("a")
        assert equivalent(var, idempotence(var, np.random.default_rng(1)))
        assert equivalent(var, identity_constant(var, np.random.default_rng(1)))

    @pytest.mark.parametrize("rule_name", sorted(RULE_NAMES))
    def test_every_rule_preserves_equivalence_on_sample(self, rule_name):
        """Apply each rule wherever it fires on a moderately rich expression."""
        rule = RULE_NAMES[rule_name]
        expr = parse("!((a ^ b) | !(c & a)) ^ Ite(b, a | c, !a)")
        rng = np.random.default_rng(3)
        for node in expr.iter_nodes():
            rewritten = rule(node, rng)
            if rewritten is not None:
                assert equivalent(node, rewritten), f"{rule_name} broke equivalence at {node}"


class TestRandomEquivalent:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_rewrites_preserve_function(self, seed):
        expr = parse("!((R1 ^ R2) | !R2) & (R3 | R1)")
        rewritten = random_equivalent(expr, rng=np.random.default_rng(seed), num_rewrites=4)
        assert equivalent(expr, rewritten)

    def test_random_rewrites_change_syntax(self):
        expr = parse("!(a & b) | (c ^ d)")
        changed = 0
        for seed in range(8):
            rewritten = random_equivalent(expr, rng=np.random.default_rng(seed), num_rewrites=4)
            if rewritten.to_string() != expr.to_string():
                changed += 1
        assert changed >= 6  # the augmentation almost always produces a new form

    def test_size_bound_respected(self):
        expr = parse("a & b & c & d")
        rewritten = random_equivalent(expr, rng=np.random.default_rng(0), num_rewrites=10, max_nodes=12)
        assert rewritten.num_nodes() <= 12


class TestSimplifyConstants:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("a & 1", "a"),
            ("a & 0", "0"),
            ("a | 0", "a"),
            ("a | 1", "1"),
            ("a ^ 0", "a"),
            ("!!a", "a"),
            ("Ite(1, a, b)", "a"),
            ("Ite(0, a, b)", "b"),
        ],
    )
    def test_constant_folding(self, text, expected):
        assert simplify_constants(parse(text)).to_string() == expected

    def test_simplify_preserves_equivalence(self):
        expr = parse("(a & 1) | (b & 0) | Ite(1, c, a)")
        simplified = simplify_constants(expr)
        assert equivalent(expr, simplified)


_VARIABLES = st.sampled_from(["a", "b", "c"]).map(Var)
_exprs = st.recursive(
    _VARIABLES,
    lambda children: st.one_of(
        children.map(Not),
        st.tuples(children, children).map(lambda pair: And(*pair)),
        st.tuples(children, children).map(lambda pair: Or(*pair)),
        st.tuples(children, children).map(lambda pair: Xor(*pair)),
    ),
    max_leaves=6,
)


@settings(max_examples=40, deadline=None)
@given(expr=_exprs, seed=st.integers(min_value=0, max_value=1000))
def test_random_equivalent_property(expr, seed):
    """Property: the objective-#1 augmentation never changes the Boolean function."""
    rewritten = random_equivalent(expr, rng=np.random.default_rng(seed), num_rewrites=3)
    assert equivalent(expr, rewritten)
