"""Tests for the fine-tuning helpers shared by every downstream task runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    evaluate_classification,
    evaluate_regression,
    fit_classifier,
    fit_regressor,
    train_test_split,
)


def make_blobs(seed=0, per_class=30, dim=6):
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=-1.5, size=(per_class, dim))
    b = rng.normal(loc=+1.5, size=(per_class, dim))
    return np.vstack([a, b]), np.array([0] * per_class + [1] * per_class)


class TestSplits:
    def test_split_covers_all_samples_without_overlap(self):
        split = train_test_split(20, train_fraction=0.6, seed=1)
        combined = np.concatenate([split.train, split.test])
        assert sorted(combined.tolist()) == list(range(20))

    def test_split_fraction_respected(self):
        split = train_test_split(100, train_fraction=0.7, seed=2)
        assert len(split.train) == 70
        assert len(split.test) == 30

    def test_stratified_split_keeps_class_balance(self):
        labels = np.array([0] * 20 + [1] * 10)
        split = train_test_split(30, train_fraction=0.5, seed=3, stratify=labels)
        train_labels = labels[split.train]
        assert set(np.unique(train_labels)) == {0, 1}
        test_labels = labels[split.test]
        assert set(np.unique(test_labels)) == {0, 1}

    def test_stratified_split_with_singleton_class_falls_back(self):
        labels = np.array([0] * 9 + [1])
        split = train_test_split(10, train_fraction=0.5, seed=4, stratify=labels)
        assert len(split.train) + len(split.test) == 10
        assert len(split.test) >= 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(1)
        with pytest.raises(ValueError):
            train_test_split(10, train_fraction=1.0)

    def test_split_is_deterministic(self):
        a = train_test_split(40, seed=9)
        b = train_test_split(40, seed=9)
        assert np.array_equal(a.train, b.train)
        assert np.array_equal(a.test, b.test)


class TestFitHelpers:
    @pytest.mark.parametrize("head", ["mlp", "gbdt", "ridge"])
    def test_every_classifier_head_learns_separable_data(self, head):
        features, labels = make_blobs(seed=5)
        model = fit_classifier(features, labels, head=head)
        assert (model.predict(features) == labels).mean() > 0.9

    @pytest.mark.parametrize("head", ["mlp", "gbdt", "ridge"])
    def test_every_regressor_head_learns_linear_target(self, head):
        rng = np.random.default_rng(6)
        features = rng.normal(size=(120, 5))
        targets = features @ np.array([2.0, -1.0, 0.5, 0.0, 1.0])
        model = fit_regressor(features, targets, head=head)
        predictions = model.predict(features)
        assert np.corrcoef(predictions, targets)[0, 1] > 0.85

    def test_unknown_head_rejected(self):
        features, labels = make_blobs()
        with pytest.raises(ValueError):
            fit_classifier(features, labels, head="transformer")
        with pytest.raises(ValueError):
            fit_regressor(features, labels.astype(float), head="transformer")


class TestEvaluationHelpers:
    def test_evaluate_classification_reports_holdout_metrics(self):
        features, labels = make_blobs(seed=7, per_class=40)
        split = train_test_split(len(labels), train_fraction=0.6, seed=7, stratify=labels)
        report, predictions = evaluate_classification(features, labels, split, head="ridge")
        assert set(report) >= {"accuracy", "precision", "recall", "f1"}
        assert len(predictions) == len(split.test)
        assert report["accuracy"] > 0.8

    def test_evaluate_regression_reports_holdout_metrics(self):
        rng = np.random.default_rng(8)
        features = rng.normal(size=(100, 4))
        targets = 3.0 * features[:, 0] + 10.0
        split = train_test_split(100, train_fraction=0.6, seed=8)
        report, predictions = evaluate_regression(features, targets, split, head="ridge")
        assert set(report) == {"r", "mape"}
        assert report["r"] > 0.95
        assert len(predictions) == len(split.test)
