"""Tests for the text-attributed-graph formulation (repro.netlist.tag)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr import equivalent, parse
from repro.netlist import (
    EXPRESSION_FEATURES,
    PHYSICAL_FIELDS,
    expression_dataset,
    expression_feature_vector,
    gate_expression,
    netlist_to_tag,
    physical_annotations,
    render_gate_text,
)


class TestGateExpression:
    def test_one_hop_is_local_function(self, tiny_netlist):
        expr = gate_expression(tiny_netlist, "u_xor", k=1)
        assert equivalent(expr, parse("a ^ b"))

    def test_two_hop_expands_fanin(self, tiny_netlist):
        expr = gate_expression(tiny_netlist, "u_or", k=2)
        assert equivalent(expr, parse("(a ^ b) | !b"))

    def test_deep_expansion_reaches_primary_inputs(self, tiny_netlist):
        expr = gate_expression(tiny_netlist, "u_out", k=4)
        assert equivalent(expr, parse("!((a ^ b) | !b)"))

    def test_register_expression_is_next_state_function(self, tiny_netlist):
        expr = gate_expression(tiny_netlist, "r_state", k=4)
        assert equivalent(expr, parse("!((a ^ b) | !b)"))

    def test_pi_only_fanin_is_independent_of_k(self, tiny_netlist):
        """A gate whose fan-in is all primary inputs has the same expression for any k."""
        for k in (1, 2, 5):
            assert equivalent(gate_expression(tiny_netlist, "u_xor", k=k), parse("a ^ b"))


class TestExpressionFeatures:
    def test_feature_vector_length_matches_declaration(self):
        vec = expression_feature_vector(parse("a & b | !c"))
        assert vec.shape == (len(EXPRESSION_FEATURES),)

    def test_operator_counts(self):
        vec = expression_feature_vector(parse("(a & b) ^ !(c | d)"))
        features = dict(zip(EXPRESSION_FEATURES, vec))
        assert features["and_count"] == 1
        assert features["or_count"] == 1
        assert features["xor_count"] == 1
        assert features["not_count"] == 1
        assert features["num_variables"] == 4

    def test_signal_probability_of_simple_gates(self):
        and_vec = dict(zip(EXPRESSION_FEATURES, expression_feature_vector(parse("a & b"))))
        or_vec = dict(zip(EXPRESSION_FEATURES, expression_feature_vector(parse("a | b"))))
        assert and_vec["signal_probability"] == pytest.approx(0.25)
        assert or_vec["signal_probability"] == pytest.approx(0.75)

    def test_wide_expressions_use_default_probability(self):
        wide = parse(" & ".join(f"v{i}" for i in range(12)))
        features = dict(zip(EXPRESSION_FEATURES, expression_feature_vector(wide)))
        assert features["signal_probability"] == pytest.approx(0.5)


class TestPhysicalAnnotations:
    def test_every_gate_annotated_with_all_fields(self, comb_netlist):
        annotations = physical_annotations(comb_netlist)
        assert set(annotations) == set(comb_netlist.gates)
        for values in annotations.values():
            assert set(values) == set(PHYSICAL_FIELDS)

    def test_probability_and_toggle_in_valid_range(self, comb_netlist):
        for values in physical_annotations(comb_netlist).values():
            assert 0.0 <= values["probability"] <= 1.0
            assert values["toggle_rate"] >= 0.0

    def test_area_matches_cell_library(self, tiny_netlist):
        annotations = physical_annotations(tiny_netlist)
        for name, values in annotations.items():
            assert values["area"] == pytest.approx(tiny_netlist.cell_of(name).area)

    def test_load_reflects_fanout(self, tiny_netlist):
        annotations = physical_annotations(tiny_netlist)
        # u_inv drives one sink (u_or); u_xor drives one sink too; the OR gate
        # drives u_out.  A gate with no sink still sees the wire estimate.
        assert annotations["u_or"]["load"] > 0.0
        assert annotations["u_out"]["delay"] >= tiny_netlist.cell_of("u_out").delay

    def test_power_includes_leakage(self, tiny_netlist):
        annotations = physical_annotations(tiny_netlist)
        for name, values in annotations.items():
            assert values["power"] >= tiny_netlist.cell_of(name).leakage_power - 1e-9


class TestRenderGateText:
    def test_paper_prompt_format(self):
        physical = {f: 1.0 for f in PHYSICAL_FIELDS}
        text = render_gate_text("U3", "NOR2", "!((R1 ^ R2) | !R2)", physical)
        assert "[Name] U3" in text
        assert "[Type] NOR2" in text
        assert "[Expr] U3 = !((R1 ^ R2) | !R2)" in text
        assert "[Phys]" in text

    def test_expression_can_be_omitted(self):
        physical = {f: 1.0 for f in PHYSICAL_FIELDS}
        text = render_gate_text("U3", "NOR2", "a & b", physical, include_expression=False)
        assert "[Expr]" not in text
        assert "[Phys]" in text

    def test_physical_can_be_omitted(self):
        physical = {f: 1.0 for f in PHYSICAL_FIELDS}
        text = render_gate_text("U3", "NOR2", "a & b", physical, include_physical=False)
        assert "[Phys]" not in text
        assert "[Expr]" in text


class TestNetlistToTag:
    def test_node_per_gate_in_graph_order(self, comb_netlist):
        tag = netlist_to_tag(comb_netlist)
        assert tag.num_nodes == comb_netlist.num_gates
        assert [n.name for n in tag.nodes] == tag.graph.node_names

    def test_node_fields_populated(self, tiny_netlist):
        tag = netlist_to_tag(tiny_netlist, k=2)
        node = tag.nodes[tag.node_index("u_or")]
        assert node.cell_type == "OR2"
        assert node.is_register is False
        assert "[Expr]" in node.text
        assert set(node.physical) == set(PHYSICAL_FIELDS)
        assert node.expression_features.shape == (len(EXPRESSION_FEATURES),)

    def test_register_node_flagged(self, tiny_netlist):
        tag = netlist_to_tag(tiny_netlist)
        node = tag.nodes[tag.node_index("r_state")]
        assert node.is_register is True
        assert node.cell_type == "DFF"

    def test_physical_matrix_shape_and_normalisation(self, comb_netlist):
        tag = netlist_to_tag(comb_netlist)
        raw = tag.physical_matrix(normalise=False)
        normalised = tag.physical_matrix(normalise=True)
        assert raw.shape == (tag.num_nodes, len(PHYSICAL_FIELDS))
        assert np.all(normalised <= np.log1p(np.maximum(raw, 0.0)) + 1e-12)

    def test_expression_feature_matrix_shape(self, comb_netlist):
        tag = netlist_to_tag(comb_netlist)
        assert tag.expression_feature_matrix().shape == (tag.num_nodes, len(EXPRESSION_FEATURES))

    def test_cell_type_labels(self, tiny_netlist):
        tag = netlist_to_tag(tiny_netlist)
        type_index = tiny_netlist.library.type_index()
        labels = tag.cell_type_labels(type_index)
        assert labels[tag.node_index("u_xor")] == type_index["XOR2"]
        assert labels[tag.node_index("r_state")] == type_index["DFF"]

    def test_include_flags_strip_text_sections(self, tiny_netlist):
        tag = netlist_to_tag(tiny_netlist, include_expression=False, include_physical=False)
        for node in tag.nodes:
            assert "[Expr]" not in node.text
            assert "[Phys]" not in node.text

    def test_gate_attributes_carried_to_nodes(self, tiny_netlist):
        tag = netlist_to_tag(tiny_netlist)
        assert tag.nodes[tag.node_index("r_state")].attributes.get("role") == "state"

    def test_netlist_attributes_carried_to_graph(self, tiny_netlist):
        tag = netlist_to_tag(tiny_netlist)
        assert tag.attributes["num_gates"] == tiny_netlist.num_gates


class TestExpressionDataset:
    def test_skips_registers(self, tiny_netlist):
        pairs = expression_dataset(tiny_netlist)
        names = [name for name, _ in pairs]
        assert "r_state" not in names
        assert set(names) == {"u_xor", "u_inv", "u_or", "u_out"}

    def test_expressions_parse_back(self, tiny_netlist):
        for _, text in expression_dataset(tiny_netlist, k=2):
            parse(text)  # must not raise

    def test_max_gates_cap(self, comb_netlist):
        pairs = expression_dataset(comb_netlist, max_gates=5)
        assert len(pairs) == 5
