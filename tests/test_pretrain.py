"""Tests for the self-supervised pre-training machinery (repro.pretrain)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.encoders import ExprLLM, TAGFormer, TextEncoderConfig
from repro.expr import equivalent, parse
from repro.netlist import netlist_to_tag
from repro.nn import Tensor
from repro.pretrain import (
    ExprLLMPretrainer,
    ExprPretrainConfig,
    TAGFormerPretrainer,
    TAGPretrainConfig,
    augment_expression,
    augment_tag,
    build_expression_pairs,
    build_pretrain_sample,
    collect_expression_corpus,
    cross_stage_loss,
    expression_contrastive_loss,
    graph_contrastive_loss,
    graph_size_loss,
    mask_node_indices,
    masked_gate_features,
    masked_gate_loss,
    size_target_vector,
)


@pytest.fixture(scope="module")
def expr_llm():
    return ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def comb_tag(comb_netlist):
    return netlist_to_tag(comb_netlist)


class TestAugmentations:
    def test_augment_expression_preserves_function(self, fresh_rng):
        original = "!((a ^ b) | !b) & (c | d)"
        for _ in range(5):
            rewritten = augment_expression(original, fresh_rng)
            assert equivalent(parse(original), parse(rewritten))

    def test_augment_expression_handles_garbage(self, fresh_rng):
        assert augment_expression("not ((an expression", fresh_rng) == "not ((an expression"

    def test_build_expression_pairs(self, fresh_rng):
        expressions = ["a & b", "a | !b", "a ^ (b & c)"]
        pairs = build_expression_pairs(expressions, rng=fresh_rng)
        assert len(pairs) == 3
        for original, rewrite in pairs:
            assert equivalent(parse(original), parse(rewrite))

    def test_augment_tag_preserves_structure_and_function(self, comb_tag, fresh_rng):
        augmented = augment_tag(comb_tag, rng=fresh_rng)
        assert augmented.num_nodes == comb_tag.num_nodes
        assert augmented.graph is comb_tag.graph or np.allclose(
            augmented.graph.adjacency, comb_tag.graph.adjacency
        )
        for before, after in zip(comb_tag.nodes, augmented.nodes):
            assert before.cell_type == after.cell_type
            assert equivalent(parse(before.expression), parse(after.expression))

    def test_mask_node_indices_ratio_and_bounds(self, comb_tag, fresh_rng):
        indices = mask_node_indices(comb_tag.num_nodes, mask_ratio=0.25, rng=fresh_rng)
        assert len(indices) >= 1
        assert len(indices) <= max(1, int(np.ceil(0.25 * comb_tag.num_nodes)) + 1)
        assert len(set(indices.tolist())) == len(indices)
        assert indices.max() < comb_tag.num_nodes


class TestObjectives:
    def test_expression_contrastive_loss_prefers_aligned_pairs(self):
        rng = np.random.default_rng(0)
        anchors = Tensor(rng.normal(size=(6, 8)))
        aligned = expression_contrastive_loss(anchors, Tensor(anchors.data.copy()))
        shuffled = expression_contrastive_loss(anchors, Tensor(rng.normal(size=(6, 8))))
        assert aligned.data < shuffled.data

    def test_masked_gate_features_zeroes_masked_rows(self):
        features = np.ones((5, 3))
        masked = masked_gate_features(features, np.array([1, 3]))
        assert np.all(masked[[1, 3]] == 0.0)
        assert np.all(masked[[0, 2, 4]] == 1.0)
        assert np.all(features == 1.0)  # input untouched

    def test_masked_gate_loss_positive_and_zero_when_unmasked(self):
        rng = np.random.default_rng(1)
        embeddings = Tensor(rng.normal(size=(6, 8)))
        classifier = nn.MLP(8, 4, hidden_sizes=(8,), rng=rng)
        labels = np.array([0, 1, 2, 3, 0, 1])
        loss = masked_gate_loss(embeddings, classifier, labels, np.array([0, 2, 4]))
        assert loss.data > 0.0
        empty = masked_gate_loss(embeddings, classifier, labels, np.array([], dtype=np.int64))
        assert float(empty.data) == 0.0

    def test_graph_contrastive_and_size_losses(self):
        rng = np.random.default_rng(2)
        graphs = Tensor(rng.normal(size=(4, 8)))
        loss = graph_contrastive_loss(graphs, Tensor(graphs.data + 0.01 * rng.normal(size=(4, 8))))
        assert np.isfinite(loss.data)
        regressor = nn.MLP(8, 5, hidden_sizes=(8,), rng=rng)
        size_loss = graph_size_loss(Tensor(rng.normal(size=(1, 8))), regressor, np.ones((1, 5)))
        assert size_loss.data > 0.0

    def test_cross_stage_loss_combines_available_stages(self):
        rng = np.random.default_rng(3)
        netlist_emb = Tensor(rng.normal(size=(4, 8)))
        rtl_emb = Tensor(rng.normal(size=(4, 8)))
        layout_emb = Tensor(rng.normal(size=(4, 8)))
        both = cross_stage_loss(netlist_emb, rtl_emb, layout_emb)
        rtl_only = cross_stage_loss(netlist_emb, rtl_emb, None)
        neither = cross_stage_loss(netlist_emb, None, None)
        assert both.data > rtl_only.data > 0.0
        assert float(neither.data) == 0.0


class TestPretrainData:
    def test_collect_expression_corpus(self, comb_tag):
        corpus = collect_expression_corpus([comb_tag], max_expressions_per_design=10)
        assert 0 < len(corpus) <= 10
        for expression in corpus:
            parse(expression)

    def test_size_target_vector_counts_types(self, comb_tag, comb_netlist):
        type_index = comb_netlist.library.type_index()
        target = size_target_vector(comb_tag, type_index)
        assert target.shape == (len(type_index),)
        counts = comb_netlist.cell_type_counts()
        for cell_type, count in counts.items():
            assert target[type_index[cell_type]] == pytest.approx(np.log1p(count))

    def test_build_pretrain_sample_shapes(self, comb_tag, comb_netlist, expr_llm, fresh_rng):
        type_index = comb_netlist.library.type_index()
        sample = build_pretrain_sample(comb_tag, expr_llm, type_index, rng=fresh_rng)
        n = comb_tag.num_nodes
        assert sample.text_embeddings.shape == (n, expr_llm.output_dim)
        assert sample.semantic.shape[0] == n
        assert sample.physical.shape[0] == n
        assert sample.adjacency.shape == (n, n)
        assert sample.cell_type_labels.shape == (n,)
        assert sample.size_target.shape == (len(type_index),)
        assert sample.augmented_text_embeddings is not None

    def test_build_pretrain_sample_without_text_attributes(self, comb_tag, comb_netlist, expr_llm, fresh_rng):
        type_index = comb_netlist.library.type_index()
        sample = build_pretrain_sample(
            comb_tag, expr_llm, type_index, rng=fresh_rng, use_text_attributes=False
        )
        assert np.allclose(sample.semantic, 0.0)
        # Every node gets the same (empty) text, hence identical embeddings.
        assert np.allclose(sample.text_embeddings, sample.text_embeddings[0])


class TestTrainers:
    def test_expr_pretrainer_reduces_or_tracks_loss(self, expr_llm):
        expressions = ["a & b", "!(a | b)", "a ^ b", "(a & b) | c", "!a & (b | c)", "a ^ (b & c)"]
        config = ExprPretrainConfig(num_steps=4, batch_size=4, use_lora=True)
        pretrainer = ExprLLMPretrainer(expr_llm, config)
        result = pretrainer.run(expressions)
        assert result.steps == 4
        assert len(result.losses) == 4
        assert all(np.isfinite(l) for l in result.losses)

    def test_tagformer_pretrainer_runs_all_objectives(self, comb_tag, comb_netlist, seq_netlist, expr_llm, fresh_rng):
        from repro.encoders import TAGFormerConfig

        type_index = comb_netlist.library.type_index()
        seq_tag = netlist_to_tag(seq_netlist)
        samples = [
            build_pretrain_sample(comb_tag, expr_llm, type_index, rng=fresh_rng),
            build_pretrain_sample(seq_tag, expr_llm, type_index, rng=fresh_rng),
        ]
        # Input dim must match the sample features: text + semantic + physical.
        input_dim = (
            samples[0].text_embeddings.shape[1]
            + samples[0].semantic.shape[1]
            + samples[0].physical.shape[1]
        )
        tagformer = TAGFormer(
            TAGFormerConfig(input_dim=input_dim, dim=16, depth=1, num_heads=2, output_dim=8),
            rng=np.random.default_rng(0),
        )
        trainer = TAGFormerPretrainer(
            tagformer,
            num_cell_types=len(type_index),
            config=TAGPretrainConfig(num_epochs=1, batch_size=2),
        )
        result = trainer.run(samples)
        assert np.isfinite(result.final_loss)
        assert result.epochs == 1
        assert "masked_gate" in result.objective_losses

    def test_tagformer_pretrainer_needs_at_least_two_samples(self, comb_tag, comb_netlist, expr_llm, fresh_rng):
        from repro.encoders import TAGFormerConfig

        type_index = comb_netlist.library.type_index()
        sample = build_pretrain_sample(comb_tag, expr_llm, type_index, rng=fresh_rng)
        input_dim = (
            sample.text_embeddings.shape[1] + sample.semantic.shape[1] + sample.physical.shape[1]
        )
        trainer = TAGFormerPretrainer(
            TAGFormer(TAGFormerConfig(input_dim=input_dim, dim=16, depth=1, num_heads=2, output_dim=8)),
            num_cell_types=len(type_index),
            config=TAGPretrainConfig(num_epochs=1, batch_size=2),
        )
        result = trainer.run([sample])
        assert result.epochs == 0
        assert result.total_losses == []
