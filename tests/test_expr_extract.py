"""Tests for k-hop fan-in cone expression extraction."""

from __future__ import annotations

from typing import Dict, Optional

import pytest

from repro.expr import And, Expr, Not, Or, Var, Xor, cone_depth, equivalent, khop_expression


def _lookup_from_dict(table: Dict[str, Expr]):
    def lookup(symbol: str) -> Optional[Expr]:
        return table.get(symbol)

    return lookup


@pytest.fixture()
def chain_lookup():
    """A small logic chain:  n3 = !(n2 | !b),  n2 = a ^ b,  leaves: a, b."""
    return _lookup_from_dict(
        {
            "n3": Not(Or(Var("n2"), Not(Var("b")))),
            "n2": Xor(Var("a"), Var("b")),
        }
    )


class TestKHopExpression:
    def test_one_hop_keeps_internal_symbols(self, chain_lookup):
        expr = khop_expression("n3", chain_lookup, k=1)
        assert expr.variables() == frozenset({"n2", "b"})

    def test_two_hop_expands_to_leaves(self, chain_lookup):
        expr = khop_expression("n3", chain_lookup, k=2)
        assert expr.variables() == frozenset({"a", "b"})
        assert equivalent(expr, Not(Or(Xor(Var("a"), Var("b")), Not(Var("b")))))

    def test_leaf_symbol_returns_var(self, chain_lookup):
        expr = khop_expression("a", chain_lookup, k=2)
        assert expr == Var("a")

    def test_deeper_k_stops_at_leaves(self, chain_lookup):
        expr_k2 = khop_expression("n3", chain_lookup, k=2)
        expr_k5 = khop_expression("n3", chain_lookup, k=5)
        assert equivalent(expr_k2, expr_k5)

    def test_negative_k_rejected(self, chain_lookup):
        with pytest.raises(ValueError):
            khop_expression("n3", chain_lookup, k=-1)

    def test_max_nodes_caps_expansion(self):
        # A wide tree that doubles in size each level.
        table = {}
        for level in range(6):
            for i in range(2 ** level):
                name = f"l{level}_{i}"
                child0 = f"l{level + 1}_{2 * i}"
                child1 = f"l{level + 1}_{2 * i + 1}"
                table[name] = And(Var(child0), Var(child1))
        lookup = _lookup_from_dict(table)
        expr = khop_expression("l0_0", lookup, k=10, max_nodes=50)
        assert expr.num_nodes() <= 50 * 4  # one extra expansion round at most


class TestConeDepth:
    def test_depth_of_leaf_is_zero(self, chain_lookup):
        assert cone_depth("a", chain_lookup) == 0

    def test_depth_of_chain(self, chain_lookup):
        assert cone_depth("n2", chain_lookup) == 1
        assert cone_depth("n3", chain_lookup) == 2
