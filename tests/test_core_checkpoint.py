"""Tests for saving and reloading a pre-trained NetTAG model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NetTAG, NetTAGConfig
from repro.netlist import netlist_to_tag


class TestConfigSerialisation:
    def test_round_trip_preserves_every_field(self):
        config = NetTAGConfig.fast(model_size="medium", data_fraction=0.5, seed=3)
        rebuilt = NetTAGConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_nested_pretrain_configs_survive(self):
        config = NetTAGConfig.fast()
        rebuilt = NetTAGConfig.from_dict(config.to_dict())
        assert rebuilt.expr_pretrain == config.expr_pretrain
        assert rebuilt.tag_pretrain == config.tag_pretrain


class TestModelCheckpoint:
    def test_untrained_model_round_trip(self, comb_netlist, tmp_path):
        model = NetTAG(NetTAGConfig.fast(seed=5), rng=np.random.default_rng(5))
        tag = netlist_to_tag(comb_netlist)
        reference_nodes, reference_graph = model.encode_tag_multigrained(tag)

        path = model.save(tmp_path / "nettag.npz")
        restored = NetTAG.load(path, rng=np.random.default_rng(99))
        assert restored.config == model.config
        nodes, graph = restored.encode_tag_multigrained(tag)
        assert np.allclose(nodes, reference_nodes)
        assert np.allclose(graph, reference_graph)

    def test_pretrained_model_round_trip(self, pretrained_pipeline, comb_netlist, tmp_path):
        """A Step-1/Step-2 pre-trained model (with LoRA adapters) reloads exactly."""
        model = pretrained_pipeline.model
        tag = netlist_to_tag(comb_netlist)
        reference_nodes, reference_graph = model.encode_tag_multigrained(tag)

        path = model.save(tmp_path / "pretrained.npz")
        restored = NetTAG.load(path)
        nodes, graph = restored.encode_tag_multigrained(tag)
        assert np.allclose(nodes, reference_nodes, atol=1e-8)
        assert np.allclose(graph, reference_graph, atol=1e-8)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            NetTAG.load(tmp_path / "nope.npz")


class TestCheckpointMetadata:
    def test_save_stamps_library_version_and_preset(self, tmp_path):
        import repro
        from repro import nn

        model = NetTAG(NetTAGConfig.fast(seed=1), rng=np.random.default_rng(1))
        path = model.save(tmp_path / "meta.npz")
        metadata = nn.peek_metadata(path)
        assert metadata["library_version"] == repro.__version__
        assert metadata["preset"] == "fast"

    def test_corpus_fingerprint_recorded_via_extra_metadata(self, tmp_path):
        from repro import nn

        model = NetTAG(NetTAGConfig.fast(seed=1), rng=np.random.default_rng(1))
        path = model.save(tmp_path / "meta.npz", extra_metadata={"corpus_fingerprint": "abc123"})
        assert nn.peek_metadata(path)["corpus_fingerprint"] == "abc123"

    def test_load_warns_on_library_version_mismatch(self, tmp_path):
        from repro import nn

        model = NetTAG(NetTAGConfig.fast(seed=1), rng=np.random.default_rng(1))
        path = nn.save_checkpoint(
            model, tmp_path / "old.npz",
            metadata={"config": model.config.to_dict(), "library_version": "0.0.1-ancient"},
        )
        with pytest.warns(UserWarning, match="library_version"):
            NetTAG.load(path)

    def test_load_warns_on_expected_metadata_mismatch(self, tmp_path):
        model = NetTAG(NetTAGConfig.fast(seed=1), rng=np.random.default_rng(1))
        path = model.save(tmp_path / "meta.npz", extra_metadata={"corpus_fingerprint": "abc123"})
        with pytest.warns(UserWarning, match="corpus_fingerprint"):
            NetTAG.load(path, expected_metadata={"corpus_fingerprint": "zzz999"})

    def test_load_is_silent_when_metadata_matches(self, tmp_path):
        import warnings

        model = NetTAG(NetTAGConfig.fast(seed=1), rng=np.random.default_rng(1))
        path = model.save(tmp_path / "meta.npz", extra_metadata={"corpus_fingerprint": "abc123"})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            NetTAG.load(path, expected_metadata={"corpus_fingerprint": "abc123"})
