"""Checkpoint→resume determinism for the pre-trainers and the full pipeline.

The contract under test is the acceptance criterion of the resumable training
engine: interrupting a run after a checkpoint and rerunning with resume
produces the *exact* final losses and weights of an uninterrupted run, and a
second run with a warm artifact cache skips preprocessing (visible in the
stage timers).
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core import NetTAGConfig, NetTAGPipeline
from repro.encoders import ExprLLM, TextEncoderConfig
from repro.pretrain import ExprLLMPretrainer, ExprPretrainConfig


EXPRESSIONS = [
    "a & b", "a | !b", "a ^ (b & c)", "!(a | b) & c", "(a & b) | (c & d)",
    "!a ^ b", "a & (b | c)", "!(a ^ c)", "(a | b) ^ (c | d)", "a & b & c",
]


def _expr_params(model: ExprLLM):
    return {name: param.data.copy() for name, param in model.named_parameters()}


class TestExprPretrainerResume:
    def test_interrupt_and_resume_is_bit_identical(self, tmp_path):
        config = ExprPretrainConfig(num_steps=10, batch_size=4, seed=2)

        reference_model = ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(0))
        reference = ExprLLMPretrainer(reference_model, config).run(EXPRESSIONS)
        assert reference.completed and len(reference.losses) == 10

        ckpt = tmp_path / "expr.ckpt.npz"
        interrupted_model = ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(0))
        partial = ExprLLMPretrainer(interrupted_model, config).run(
            EXPRESSIONS, checkpoint_path=ckpt, checkpoint_every=2, max_steps=5
        )
        assert not partial.completed
        assert partial.steps == 5

        resumed = ExprLLMPretrainer(interrupted_model, config).run(
            EXPRESSIONS, checkpoint_path=ckpt, checkpoint_every=2, resume=True
        )
        assert resumed.completed
        assert resumed.resumed_from_step == 5
        assert resumed.losses == reference.losses

        reference_params = _expr_params(reference_model)
        resumed_params = _expr_params(interrupted_model)
        assert set(reference_params) == set(resumed_params)
        for name, value in reference_params.items():
            np.testing.assert_array_equal(value, resumed_params[name])

    def test_sharded_plan_skips_singleton_batches(self, tmp_path):
        # 17 pairs, shard_size 16 -> trailing 1-item shard; its singleton
        # batch must be skipped (min_batch_size=2), not fed to InfoNCE.
        variables = ["a", "b", "c", "d"]
        expressions = [
            f"{variables[i % 4]} & {variables[(i + 1) % 4]} | !{variables[(i + 2) % 4]} ^ x{i}"
            for i in range(17)
        ]
        config = ExprPretrainConfig(num_steps=6, batch_size=4, seed=1, shard_size=16)
        model = ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(0))
        result = ExprLLMPretrainer(model, config).run(
            expressions, shard_dir=tmp_path / "shards"
        )
        assert result.completed
        assert result.num_pairs >= 17

    def test_lora_adapters_survive_resume(self, tmp_path):
        config = ExprPretrainConfig(num_steps=4, batch_size=4, seed=0, use_lora=True)
        ckpt = tmp_path / "lora.ckpt.npz"
        model = ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(0))
        ExprLLMPretrainer(model, config).run(
            EXPRESSIONS, checkpoint_path=ckpt, checkpoint_every=1, max_steps=2
        )
        # The resumed run wraps a *fresh* model with LoRA in setup, then loads
        # adapter weights from the snapshot.
        fresh = ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(0))
        resumed = ExprLLMPretrainer(fresh, config).run(
            EXPRESSIONS, checkpoint_path=ckpt, checkpoint_every=1, resume=True
        )
        assert resumed.completed
        assert any("lora_" in name for name, _ in fresh.named_parameters())


_MATRIX_SCRIPT = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.encoders import ExprLLM, TextEncoderConfig
    from repro.pretrain import ExprLLMPretrainer, ExprPretrainConfig

    # The __main__ guard is load-bearing: the spawn start method re-imports
    # this script in every worker process.
    if __name__ == "__main__":
        num_workers, shard_dir, out_path = int(sys.argv[1]), sys.argv[2], sys.argv[3]
        expressions = [
            "a & b", "a | !b", "a ^ (b & c)", "!(a | b) & c", "(a & b) | (c & d)",
            "!a ^ b", "a & (b | c)", "!(a ^ c)", "(a | b) ^ (c | d)", "a & b & c",
            "c | (a & !b)", "!(c & d) | a", "a ^ b ^ c", "(a | c) & (b | d)",
        ]
        config = ExprPretrainConfig(
            num_steps=4, batch_size=8, seed=5,
            num_workers=num_workers, world_size=2, shard_size=8,
        )
        model = ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(0))
        result = ExprLLMPretrainer(model, config).run(expressions, shard_dir=shard_dir)
        payload = {"losses": np.asarray(result.losses, dtype=np.float64)}
        for name, param in model.named_parameters():
            payload["param::" + name] = param.data
        np.savez(out_path, **payload)
    """
)


class TestDeterminismMatrix:
    """Loss curves and weights are invariant to PYTHONHASHSEED *and* workers.

    The acceptance criterion of the data-parallel engine: a short pre-train
    run under three different hash seeds times {1, 2} worker processes — six
    fresh interpreters — produces byte-identical loss curves and final
    weights.  Hash-seed invariance guards against set/dict iteration order
    leaking into training (the PR-2 ordered_signals bug class); worker
    invariance is the parallel engine's ordered all-reduce contract.
    """

    def test_hash_seed_times_worker_matrix_is_byte_identical(self, tmp_path):
        script = tmp_path / "matrix_run.py"
        script.write_text(_MATRIX_SCRIPT)
        repo_src = Path(__file__).resolve().parents[1] / "src"

        outputs = {}
        for hash_seed in ("0", "1", "31337"):
            for workers in (1, 2):
                out = tmp_path / f"run-h{hash_seed}-w{workers}.npz"
                shard_dir = tmp_path / f"shards-h{hash_seed}-w{workers}"
                env = dict(os.environ)
                env["PYTHONHASHSEED"] = hash_seed
                env["PYTHONPATH"] = str(repo_src) + os.pathsep + env.get("PYTHONPATH", "")
                proc = subprocess.run(
                    [sys.executable, str(script), str(workers), str(shard_dir), str(out)],
                    capture_output=True, text=True, timeout=600, env=env,
                )
                assert proc.returncode == 0, (
                    f"matrix run (hash seed {hash_seed}, {workers} workers) failed:\n"
                    f"{proc.stdout}\n{proc.stderr}"
                )
                outputs[(hash_seed, workers)] = dict(np.load(out))

        reference_key = ("0", 1)
        reference = outputs[reference_key]
        assert len(reference["losses"]) == 4
        assert any(key.startswith("param::") for key in reference)
        for key, payload in outputs.items():
            if key == reference_key:
                continue
            assert set(payload) == set(reference), f"array set diverged for {key}"
            for array_name, want in reference.items():
                got = payload[array_name]
                assert got.tobytes() == want.tobytes(), (
                    f"{array_name} diverged for hash seed {key[0]}, {key[1]} workers"
                )


@pytest.fixture(scope="module")
def reference_run():
    """Uninterrupted fast pipeline run used as the ground truth."""
    pipeline = NetTAGPipeline(NetTAGConfig.fast())
    summary = pipeline.pretrain(designs_per_suite=1)
    return pipeline, summary


class TestPipelineResume:
    def test_mid_stage_interrupt_then_resume_matches_reference(self, tmp_path, reference_run):
        reference_pipeline, reference_summary = reference_run

        work = tmp_path / "run"
        interrupted = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=work)
        partial = interrupted.pretrain(
            designs_per_suite=1, checkpoint_every=2,
            max_steps={"expr_pretrain": 3},
        )
        assert partial.stopped_after == "expr_pretrain"
        assert not partial.expr_result.completed

        resumed = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=work)
        summary = resumed.pretrain(designs_per_suite=1, checkpoint_every=2, resume=True)
        assert summary.stopped_after is None
        assert resumed.is_pretrained

        assert summary.expr_result.losses == reference_summary.expr_result.losses
        assert summary.tag_result.total_losses == reference_summary.tag_result.total_losses
        reference_params = dict(reference_pipeline.model.named_parameters())
        resumed_params = dict(resumed.model.named_parameters())
        assert set(reference_params) == set(resumed_params)
        for name, param in reference_params.items():
            np.testing.assert_array_equal(param.data, resumed_params[name].data)

        # The artifact cache absorbed the preprocessing on the second run.
        cached = {t.name: t.cached for t in summary.stage_timings}
        assert cached["preprocess"] and cached["expr_corpus"]
        # The interrupted Step-1 stage really retrained (not a replay).
        assert not cached["expr_pretrain"]

    def test_warm_cache_skips_preprocessing_and_reproduces_losses(self, tmp_path, reference_run):
        _, reference_summary = reference_run
        work = tmp_path / "cache"

        cold = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=work)
        cold_summary = cold.pretrain(designs_per_suite=1)
        cold_cached = {t.name: t.cached for t in cold_summary.stage_timings}
        assert not cold_cached["preprocess"]

        warm = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=work, checkpoint_dir=tmp_path / "ckpt")
        warm_summary = warm.pretrain(designs_per_suite=1)
        warm_cached = {t.name: t.cached for t in warm_summary.stage_timings}
        assert warm_cached["preprocess"]
        assert warm_cached["expr_corpus"]
        assert warm_cached["samples"]
        assert warm_summary.cache_stats["hits"] >= 3

        # Cached artefacts round-trip losslessly: the training curves match
        # the cache-free reference bit for bit.
        assert warm_summary.expr_result.losses == reference_summary.expr_result.losses
        assert warm_summary.tag_result.total_losses == reference_summary.tag_result.total_losses

    def test_config_change_invalidates_cache_and_checkpoints(self, tmp_path):
        work = tmp_path / "cache"
        first = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=work)
        first.pretrain(designs_per_suite=1, checkpoint_every=2,
                       max_steps={"expr_pretrain": 2})

        different = NetTAGPipeline(NetTAGConfig.fast(seed=7), cache_dir=work)
        summary = different.pretrain(designs_per_suite=1, stop_after="preprocess")
        cached = {t.name: t.cached for t in summary.stage_timings}
        assert not cached["preprocess"]  # different seed -> different key

    def test_stop_after_validation(self):
        pipeline = NetTAGPipeline(NetTAGConfig.fast())
        with pytest.raises(ValueError):
            pipeline.pretrain(designs_per_suite=1, stop_after="nonsense")

    def test_max_steps_interrupts_alignment_stage(self, tmp_path):
        pipeline = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=tmp_path / "c")
        summary = pipeline.pretrain(
            designs_per_suite=1, checkpoint_every=1,
            max_steps={"rtl_align": 2},
        )
        # The pipeline must stop at the interrupted stage, not silently train
        # Step 2 against a half-trained alignment encoder.
        assert summary.stopped_after == "rtl_align"
        assert summary.tag_result is None
        assert not pipeline.is_pretrained

    def test_custom_corpus_content_change_invalidates_cache(self, tmp_path):
        from repro.rtl import make_gnnre_design

        work = tmp_path / "cache"
        module_a = make_gnnre_design(1, seed=3)
        first = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=work)
        first.pretrain(corpus={"unit": [module_a]}, stop_after="preprocess")

        # Same module name, different logic: must be a cache miss.
        module_b = make_gnnre_design(2, seed=9)
        module_b.name = module_a.name
        second = NetTAGPipeline(NetTAGConfig.fast(), cache_dir=work)
        summary = second.pretrain(corpus={"unit": [module_b]}, stop_after="preprocess")
        assert not summary.stage_timings[0].cached
