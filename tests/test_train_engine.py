"""Tests for the shared training engine (repro.train): plans, Trainer, resume."""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.train import EpochPlan, SamplingPlan, Trainer, TrainerConfig, TrainTask


class LinearRegressionTask(TrainTask):
    """Toy task: fit y = 2x + 1 with one Linear layer (deterministic data)."""

    name = "toy_linear"

    def __init__(self, num_items: int = 32, batch_size: int = 8, num_epochs: int = 6,
                 noise: bool = False) -> None:
        data_rng = np.random.default_rng(1234)
        self.x = data_rng.normal(size=(num_items, 1))
        self.y = 2.0 * self.x + 1.0
        self.batch_size = batch_size
        self.num_epochs = num_epochs
        self.noise = noise
        self.model: nn.Linear | None = None

    def setup(self, rng: np.random.Generator) -> EpochPlan:
        self.model = nn.Linear(1, 1, rng=rng)
        return EpochPlan(len(self.x), self.batch_size, self.num_epochs)

    def modules(self) -> Dict[str, nn.Module]:
        assert self.model is not None
        return {"model": self.model}

    def compute_loss(self, indices, rng):
        assert self.model is not None
        targets = self.y[indices]
        if self.noise:
            # Draws from the trainer generator, so resume must restore it.
            targets = targets + rng.normal(0.0, 1e-3, size=targets.shape)
        loss = nn.mse_loss(self.model(Tensor(self.x[indices])), targets)
        return loss, {"mse": loss.item()}


def _param_snapshot(task: LinearRegressionTask) -> List[np.ndarray]:
    assert task.model is not None
    return [p.data.copy() for p in task.model.parameters()]


class TestBatchPlans:
    def test_epoch_plan_covers_every_item_once_per_epoch(self):
        plan = EpochPlan(num_items=10, batch_size=4, num_epochs=1)
        rng = np.random.default_rng(0)
        seen: List[int] = []
        for step in range(plan.total_steps()):
            seen.extend(plan.batch_indices(step, rng))
        assert sorted(seen) == list(range(10))

    def test_epoch_plan_skips_batches_below_minimum(self):
        plan = EpochPlan(num_items=5, batch_size=4, num_epochs=1, min_batch_size=2)
        rng = np.random.default_rng(0)
        batches = [plan.batch_indices(step, rng) for step in range(plan.total_steps())]
        assert batches[0] is not None and len(batches[0]) == 4
        assert batches[1] is None  # trailing single-element batch

    def test_epoch_plan_state_round_trip_mid_epoch(self):
        plan = EpochPlan(num_items=8, batch_size=2, num_epochs=2)
        rng = np.random.default_rng(3)
        first = plan.batch_indices(0, rng)
        state = plan.state_dict()
        restored = EpochPlan(num_items=8, batch_size=2, num_epochs=2)
        restored.load_state_dict(state)
        np.testing.assert_array_equal(
            plan.batch_indices(1, rng), restored.batch_indices(1, rng)
        )
        assert first is not None

    def test_sampling_plan_draws_from_given_generator(self):
        plan = SamplingPlan(num_items=20, batch_size=6, num_steps=4)
        a = plan.batch_indices(0, np.random.default_rng(7))
        b = plan.batch_indices(0, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_sampling_plan_replacement_policy(self):
        small = SamplingPlan(num_items=3, batch_size=8, num_steps=1)
        batch = small.batch_indices(0, np.random.default_rng(0))
        assert len(batch) == 3  # capped at corpus size
        no_replace = SamplingPlan(num_items=10, batch_size=5, num_steps=1, replace=False)
        batch = no_replace.batch_indices(0, np.random.default_rng(0))
        assert len(set(batch.tolist())) == 5


class TestTrainerBasics:
    def test_trainer_fits_toy_regression(self):
        task = LinearRegressionTask(num_epochs=40)
        result = Trainer(task, TrainerConfig(learning_rate=0.05)).run()
        assert result.completed
        assert result.final_loss < 1e-3
        assert result.steps == 40 * 4
        assert result.epochs == 40
        assert "mse" in result.objective_losses
        assert len(result.objective_losses["mse"]) == len(result.losses)

    def test_trainer_is_deterministic(self):
        results = []
        params = []
        for _ in range(2):
            task = LinearRegressionTask(noise=True)
            results.append(Trainer(task, TrainerConfig(seed=5)).run())
            params.append(_param_snapshot(task))
        assert results[0].losses == results[1].losses
        for a, b in zip(params[0], params[1]):
            np.testing.assert_array_equal(a, b)

    def test_cosine_schedule_is_applied(self):
        task = LinearRegressionTask(num_epochs=4)
        config = TrainerConfig(learning_rate=0.1, lr_schedule="cosine",
                               warmup_steps=2, min_lr=0.01)
        result = Trainer(task, config).run()
        assert result.learning_rates[0] < result.learning_rates[1]
        assert result.learning_rates[-1] == pytest.approx(0.01, abs=1e-6)

    def test_grad_accumulation_matches_full_batch(self):
        # One batch of 8 split into 4 micro-batches must equal the full-batch
        # update exactly (MSE over equal-sized chunks averages linearly).
        outcomes = []
        for accumulation in (1, 4):
            task = LinearRegressionTask(num_items=8, batch_size=8, num_epochs=3)
            config = TrainerConfig(
                learning_rate=0.05, optimizer="sgd", grad_accumulation=accumulation, seed=2
            )
            Trainer(task, config).run()
            outcomes.append(_param_snapshot(task))
        for a, b in zip(outcomes[0], outcomes[1]):
            np.testing.assert_allclose(a, b, atol=1e-12)

    def test_invalid_configs_rejected(self):
        task = LinearRegressionTask()
        with pytest.raises(ValueError):
            Trainer(task, TrainerConfig(optimizer="rmsprop"))
        with pytest.raises(ValueError):
            Trainer(task, TrainerConfig(lr_schedule="linear"))
        with pytest.raises(ValueError):
            Trainer(task, TrainerConfig(grad_accumulation=0))

    def test_global_grad_clip_engages(self):
        task = LinearRegressionTask(num_epochs=1)
        config = TrainerConfig(learning_rate=0.05, global_grad_clip=1e-6, seed=0)
        result = Trainer(task, config).run()
        # With gradients clipped to ~zero the parameters barely move, so the
        # loss cannot have improved meaningfully.
        assert abs(result.final_loss - result.initial_loss) < 0.5


class TestCheckpointResume:
    @pytest.mark.parametrize("stop_step", [3, 8, 12])
    def test_resumed_run_is_bit_identical(self, tmp_path, stop_step):
        ckpt = tmp_path / "toy.ckpt.npz"

        reference_task = LinearRegressionTask(noise=True)
        reference = Trainer(
            reference_task, TrainerConfig(learning_rate=0.05, seed=9)
        ).run()

        interrupted_task = LinearRegressionTask(noise=True)
        config = TrainerConfig(
            learning_rate=0.05, seed=9, checkpoint_path=ckpt,
            checkpoint_every=1, max_steps=stop_step,
        )
        partial = Trainer(interrupted_task, config).run()
        assert not partial.completed
        assert ckpt.exists()

        resumed_task = LinearRegressionTask(noise=True)
        resumed = Trainer(
            resumed_task,
            TrainerConfig(learning_rate=0.05, seed=9, checkpoint_path=ckpt, checkpoint_every=1),
        ).run(resume=True)
        assert resumed.completed
        assert resumed.resumed_from_step == stop_step
        assert resumed.losses == reference.losses
        assert resumed.learning_rates == reference.learning_rates
        for a, b in zip(_param_snapshot(reference_task), _param_snapshot(resumed_task)):
            np.testing.assert_array_equal(a, b)

    def test_resume_restores_optimizer_moments(self, tmp_path):
        # Adam with stale moments diverges from a fresh Adam immediately; the
        # bit-identical check above would fail if moments weren't restored.
        # Here we additionally check the restored state dict matches.
        task = LinearRegressionTask()
        ckpt = tmp_path / "adam.ckpt.npz"
        Trainer(task, TrainerConfig(
            checkpoint_path=ckpt, checkpoint_every=2, max_steps=4, seed=1
        )).run()
        fresh = LinearRegressionTask()
        fresh.setup(np.random.default_rng(1))
        optimizer = nn.Adam(fresh.trainable_parameters(), lr=1e-3)
        state = nn.load_training_checkpoint(ckpt, fresh.modules(), optimizer)
        assert state["step"] == 4
        assert optimizer.state_dict()["t"] == 4

    def test_final_snapshot_replays_without_retraining(self, tmp_path):
        ckpt = tmp_path / "final.ckpt.npz"
        first_task = LinearRegressionTask()
        config = TrainerConfig(seed=3, checkpoint_path=ckpt, save_final=True)
        first = Trainer(first_task, config).run()
        assert ckpt.exists()

        replay_task = LinearRegressionTask()
        replay = Trainer(replay_task, config).run(resume=True)
        assert replay.completed
        assert replay.resumed_from_step == first.steps
        assert replay.losses == first.losses
        for a, b in zip(_param_snapshot(first_task), _param_snapshot(replay_task)):
            np.testing.assert_array_equal(a, b)

    def test_empty_task_completes_without_steps(self):
        class EmptyTask(LinearRegressionTask):
            def trainable_parameters(self):
                return []

        result = Trainer(EmptyTask(), TrainerConfig()).run()
        assert result.completed
        assert result.steps == 0
