"""Tests for the sharded streaming corpus (repro.train.corpus)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.train import ShardedCorpus, ShardStreamPlan


ITEMS = [f"item-{i}" for i in range(23)]


class TestShardedCorpus:
    def test_build_open_round_trip(self, tmp_path):
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=5)
        assert len(corpus) == 23
        assert corpus.num_shards == 5
        assert corpus.shard_lengths == [5, 5, 5, 5, 3]

        reopened = ShardedCorpus.open(tmp_path, name="t")
        assert len(reopened) == 23
        assert reopened.fingerprint() == corpus.fingerprint()
        assert reopened.fetch(range(23)) == ITEMS

    def test_fetch_arbitrary_order_and_bounds(self, tmp_path):
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=4)
        got = corpus.fetch([22, 0, 7, 7, 13])
        assert got == ["item-22", "item-0", "item-7", "item-7", "item-13"]
        assert corpus.fetch([]) == []
        with pytest.raises(IndexError):
            corpus.fetch([23])
        with pytest.raises(IndexError):
            corpus.fetch([-1])

    def test_getitem_and_shard_of(self, tmp_path):
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=10)
        assert corpus[0] == "item-0"
        assert corpus[15] == "item-15"
        assert corpus.shard_of(9) == 0
        assert corpus.shard_of(10) == 1
        assert corpus.shard_bounds(1) == (10, 20)
        with pytest.raises(IndexError):
            corpus.shard_of(99)

    def test_lru_keeps_at_most_cache_shards(self, tmp_path):
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=4,
                                     cache_shards=2)
        for index in (0, 5, 9, 13, 17, 21):
            corpus.fetch([index])
        assert len(corpus._cache) <= 2
        # Revisiting an evicted shard reloads from disk.
        loads_before = corpus.stats()["loads"]
        corpus.fetch([0])
        assert corpus.stats()["loads"] == loads_before + 1

    def test_prefetch_double_buffer(self, tmp_path):
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=5)
        corpus.prefetch(2)
        payload = corpus.load_shard(2)
        assert payload == ITEMS[10:15]
        assert corpus.stats()["prefetch_hits"] == 1
        # A stale prefetch for one shard must not block a later prefetch.
        corpus.prefetch(3)
        corpus.load_shard(0)  # unrelated synchronous load harvests the buffer
        corpus.prefetch(4)
        assert corpus.load_shard(4) == ITEMS[20:]

    def test_build_or_open_is_idempotent(self, tmp_path):
        first = ShardedCorpus.build_or_open(ITEMS, tmp_path, name="t", shard_size=6)
        manifest_written = first.manifest_path.read_text()
        second = ShardedCorpus.build_or_open(ITEMS, tmp_path, name="t", shard_size=6)
        assert second.fingerprint() == first.fingerprint()
        assert first.manifest_path.read_text() == manifest_written

    def test_different_names_coexist(self, tmp_path):
        a = ShardedCorpus.build(ITEMS[:10], tmp_path, name="a", shard_size=4)
        b = ShardedCorpus.build(ITEMS[10:], tmp_path, name="b", shard_size=4)
        assert a.fetch(range(10)) == ITEMS[:10]
        assert b.fetch(range(13)) == ITEMS[10:]

    def test_open_missing_or_partial_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedCorpus.open(tmp_path, name="absent")
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=5)
        corpus._store.payload_path("t", "00002").unlink()
        with pytest.raises(FileNotFoundError, match="missing shard"):
            ShardedCorpus.open(tmp_path, name="t")

    def test_corrupt_manifest_self_heals_on_build_or_open(self, tmp_path):
        # A SIGINT used to be able to leave a truncated manifest that wedged
        # every later run; a corrupt manifest must now read as "absent" so
        # build_or_open rebuilds.
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=5)
        corpus.manifest_path.write_text('{"name": "t", "shard_len')  # truncated
        with pytest.raises(FileNotFoundError, match="unreadable"):
            ShardedCorpus.open(tmp_path, name="t")
        healed = ShardedCorpus.build_or_open(ITEMS, tmp_path, name="t", shard_size=5)
        assert healed.fetch(range(23)) == ITEMS
        assert ShardedCorpus.open(tmp_path, name="t").fingerprint() == healed.fingerprint()

    def test_build_uses_store_digests_without_rereading(self, tmp_path):
        from repro.train import ArtifactStore

        store = ArtifactStore(tmp_path)
        digest = store.save("stage", "k", [1, 2, 3])
        assert digest is not None and len(digest) == 64
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=5)
        # The manifest digests are prefixes of the store's payload sha256s.
        import hashlib
        payload = corpus._store.payload_path("t", "00000").read_bytes()
        assert corpus.shard_digests[0] == hashlib.sha256(payload).hexdigest()[:16]

    def test_pickle_round_trip_reattaches_to_disk(self, tmp_path):
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=5)
        corpus.fetch(range(10))  # warm the cache; it must not be pickled
        clone = pickle.loads(pickle.dumps(corpus))
        assert clone.stats() == {"loads": 0, "prefetch_hits": 0,
                                 "prefetch_failures": 0}
        assert clone.fetch([3, 12, 22]) == ["item-3", "item-12", "item-22"]
        assert clone.fingerprint() == corpus.fingerprint()

    def test_invalid_shard_size(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedCorpus.build(ITEMS, tmp_path, shard_size=0)

    def test_poisoned_prefetch_warns_counts_and_reraises_on_that_shard(
        self, tmp_path
    ):
        """ISSUE 10 bugfix: a failed background prefetch used to surface as an
        unexplained later error; it must warn once, count, and re-raise the
        captured exception eagerly on the next load of *that* shard only."""
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=5)
        corpus._store.payload_path("t", "00002").write_bytes(b"\x80not a pickle")

        corpus.prefetch(2)
        with pytest.warns(RuntimeWarning, match="background prefetch of shard 2"):
            with pytest.raises(Exception) as excinfo:
                corpus.load_shard(2)
        assert not isinstance(excinfo.value, AssertionError)
        assert corpus.stats()["prefetch_failures"] == 1

        # Other shards stay loadable; the failure does not wedge the corpus.
        assert corpus.load_shard(0) == ITEMS[:5]
        assert corpus.fetch([21]) == ["item-21"]

    def test_prefetch_failure_warns_once_and_retry_clears_it(self, tmp_path):
        corpus = ShardedCorpus.build(ITEMS, tmp_path, name="t", shard_size=5)
        payload_path = corpus._store.payload_path("t", "00001")
        good_bytes = payload_path.read_bytes()
        payload_path.write_bytes(b"garbage")

        corpus.prefetch(1)
        with pytest.warns(RuntimeWarning, match="warning once per corpus"):
            with pytest.raises(Exception):
                corpus.load_shard(1)

        # Heal the shard: a successful retry loads cleanly, and further
        # failures no longer warn (once per corpus).
        payload_path.write_bytes(good_bytes)
        assert corpus.load_shard(1) == ITEMS[5:10]
        payload_path.write_bytes(b"garbage again")
        corpus._cache.clear()
        corpus._cache_order.clear()
        corpus.prefetch(1)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(Exception) as excinfo:
                corpus.load_shard(1)
        assert not isinstance(excinfo.value, RuntimeWarning)
        assert corpus.stats()["prefetch_failures"] == 2


class TestShardStreamPlan:
    def _collect(self, plan, rng, steps):
        batches = []
        for step in range(steps):
            batch = plan.batch_indices(step, rng)
            batches.append(None if batch is None else np.asarray(batch))
        return batches

    def test_each_pass_covers_every_item_once(self):
        plan = ShardStreamPlan(23, batch_size=4, shard_size=5, num_epochs=2)
        rng = np.random.default_rng(0)
        batches = self._collect(plan, rng, plan.total_steps())
        per_pass = plan.steps_per_pass
        for start in (0, per_pass):
            seen = np.concatenate([b for b in batches[start : start + per_pass] if b is not None])
            np.testing.assert_array_equal(np.sort(seen), np.arange(23))

    def test_batches_are_shard_local(self):
        plan = ShardStreamPlan(23, batch_size=4, shard_size=5, num_epochs=1)
        rng = np.random.default_rng(1)
        for batch in self._collect(plan, rng, plan.total_steps()):
            if batch is None:
                continue
            shards = set(int(i) // 5 for i in batch)
            assert len(shards) == 1

    def test_min_batch_size_skips_ragged_tails(self):
        plan = ShardStreamPlan(10, batch_size=3, shard_size=5, num_epochs=1,
                               min_batch_size=2)
        rng = np.random.default_rng(2)
        batches = self._collect(plan, rng, plan.total_steps())
        # Each 5-item shard yields batches of 3 and 2 — none skipped here…
        assert all(b is not None for b in batches)
        plan2 = ShardStreamPlan(11, batch_size=5, shard_size=11, num_epochs=1,
                                min_batch_size=2)
        batches2 = self._collect(plan2, np.random.default_rng(3), plan2.total_steps())
        # …but an 11-item shard with batch 5 leaves a singleton tail: skipped.
        assert batches2[-1] is None

    def test_num_steps_cycles_passes(self):
        plan = ShardStreamPlan(8, batch_size=4, shard_size=4, num_steps=7)
        assert plan.total_steps() == 7
        assert plan.steps_per_pass == 2
        rng = np.random.default_rng(4)
        batches = self._collect(plan, rng, 7)
        assert all(b is not None for b in batches)
        assert plan.epochs_completed(7) == 3

    def test_resume_mid_pass_is_bit_identical(self):
        def fresh():
            return ShardStreamPlan(23, batch_size=4, shard_size=5, num_epochs=2)

        reference_rng = np.random.default_rng(7)
        reference_plan = fresh()
        reference = self._collect(reference_plan, reference_rng, reference_plan.total_steps())

        plan = fresh()
        rng = np.random.default_rng(7)
        resume_at = 7  # mid-shard, mid-pass
        first_half = self._collect(plan, rng, resume_at)
        state = plan.state_dict()
        rng_state = rng.bit_generator.state

        resumed_plan = fresh()
        resumed_plan.load_state_dict(state)
        resumed_rng = np.random.default_rng(7)
        resumed_rng.bit_generator.state = rng_state
        second_half = [
            resumed_plan.batch_indices(step, resumed_rng)
            for step in range(resume_at, reference_plan.total_steps())
        ]
        combined = first_half + [
            None if b is None else np.asarray(b) for b in second_half
        ]
        assert len(combined) == len(reference)
        for got, want in zip(combined, reference):
            if want is None:
                assert got is None
            else:
                np.testing.assert_array_equal(got, want)

    def test_mid_pass_without_state_raises(self):
        plan = ShardStreamPlan(23, batch_size=4, shard_size=5, num_epochs=1)
        with pytest.raises(RuntimeError, match="resume state"):
            plan.batch_indices(3, np.random.default_rng(0))

    def test_prefetch_hints_reach_the_corpus(self, tmp_path):
        corpus = ShardedCorpus.build(list(range(20)), tmp_path, name="t", shard_size=5)
        plan = ShardStreamPlan(20, batch_size=5, shard_size=5, num_epochs=1,
                               corpus=corpus)
        rng = np.random.default_rng(0)
        for step in range(plan.total_steps()):
            batch = plan.batch_indices(step, rng)
            corpus.fetch(batch)
        assert corpus.stats()["prefetch_hits"] >= 1

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="at least one item"):
            ShardStreamPlan(0, batch_size=2, shard_size=4, num_steps=1)
        with pytest.raises(ValueError, match="shard_size"):
            ShardStreamPlan(5, batch_size=2, shard_size=0, num_steps=1)
        with pytest.raises(ValueError, match="exactly one"):
            ShardStreamPlan(5, batch_size=2, shard_size=4)
        with pytest.raises(ValueError, match="exactly one"):
            ShardStreamPlan(5, batch_size=2, shard_size=4, num_steps=1, num_epochs=1)
        corpus = ShardedCorpus.build(list(range(6)), tmp_path, name="t", shard_size=3)
        with pytest.raises(ValueError, match="built for"):
            ShardStreamPlan(5, batch_size=2, shard_size=3, num_steps=1, corpus=corpus)
