"""Tests for the end-to-end NetTAG pipeline (preprocessing + two-step pre-training)."""

from __future__ import annotations

import numpy as np

from repro.core import NetTAGConfig, NetTAGPipeline
from repro.rtl import make_controller, make_gnnre_design
from repro.synth import synthesize


class TestPreprocessing:
    def test_preprocess_module_builds_all_artifacts(self, pretrained_pipeline, seq_module):
        design = pretrained_pipeline.preprocess_module(seq_module, suite="unit")
        assert design.suite == "unit"
        assert design.netlist.num_gates > 0
        assert len(design.cones) == len(design.netlist.registers)
        assert len(design.cone_tags) == len(design.cones)
        assert len(design.rtl_cone_texts) == len(design.cones)
        assert len(design.cone_layouts) == len(design.cones)
        assert design.preprocess_seconds > 0.0

    def test_alignment_data_can_be_skipped(self, pretrained_pipeline, comb_module):
        design = pretrained_pipeline.preprocess_module(
            comb_module, build_alignment_data=False
        )
        assert all(text is None for text in design.rtl_cone_texts)
        assert all(layout is None for layout in design.cone_layouts)

    def test_preprocess_corpus_covers_every_suite(self, pretrained_pipeline):
        assert pretrained_pipeline.summary.num_designs == len(pretrained_pipeline.designs)
        suites = {design.suite for design in pretrained_pipeline.designs}
        assert suites == {"itc99", "opencores", "chipyard", "vexriscv"}
        assert pretrained_pipeline.summary.num_cones == sum(
            len(d.cones) for d in pretrained_pipeline.designs
        )


class TestPretraining:
    def test_pretrain_summary_is_populated(self, pretrained_pipeline):
        summary = pretrained_pipeline.summary
        assert pretrained_pipeline.is_pretrained
        assert summary.num_expressions > 0
        assert summary.expr_result is not None
        assert np.isfinite(summary.expr_result.final_loss)
        assert summary.tag_result is not None
        assert summary.total_seconds >= (
            summary.preprocess_seconds + summary.expr_pretrain_seconds
        )

    def test_ablated_pipeline_skips_expression_pretraining(self):
        config = NetTAGConfig.fast(
            use_expression_contrastive=False, use_cross_stage_alignment=False
        )
        pipeline = NetTAGPipeline(config)
        summary = pipeline.pretrain(designs_per_suite=1)
        assert summary.num_expressions == 0
        assert summary.expr_result is None
        assert pipeline.rtl_encoder is None
        assert pipeline.layout_encoder is None

    def test_data_fraction_reduces_corpus(self):
        full = NetTAGPipeline(NetTAGConfig.fast())
        full.preprocess_corpus(designs_per_suite=1)
        reduced = NetTAGPipeline(NetTAGConfig.fast(data_fraction=0.25))
        reduced.preprocess_corpus(designs_per_suite=1)
        rng = np.random.default_rng(0)
        all_tags = [tag for d in full.designs for tag in d.cone_tags]
        kept = reduced._apply_data_fraction(all_tags, rng)
        assert 2 <= len(kept) <= len(all_tags)
        assert len(kept) <= max(2, int(round(0.25 * len(all_tags))) )


class TestServing:
    def test_embed_circuit_after_pretraining(self, pretrained_pipeline):
        netlist = synthesize(make_gnnre_design(2, seed=9)).netlist
        embedding = pretrained_pipeline.embed_circuit(netlist)
        assert embedding.gate_embeddings.shape[0] == netlist.num_gates
        assert np.all(np.isfinite(embedding.graph_embedding))

    def test_embed_gates_and_cones(self, pretrained_pipeline):
        netlist = synthesize(make_controller("pipeline_serving", seed=4)).netlist
        gate_embeddings, names = pretrained_pipeline.embed_gates(netlist)
        assert gate_embeddings.shape[0] == len(names) == netlist.num_gates
        from repro.netlist import extract_register_cones

        cones = extract_register_cones(netlist)
        cone_embeddings = pretrained_pipeline.embed_cones(cones)
        assert set(cone_embeddings) == {c.register_name for c in cones}

    def test_embeddings_differ_between_designs(self, pretrained_pipeline):
        a = pretrained_pipeline.embed_circuit(synthesize(make_gnnre_design(1, seed=3)).netlist)
        b = pretrained_pipeline.embed_circuit(synthesize(make_gnnre_design(3, seed=4)).netlist)
        assert not np.allclose(a.graph_embedding, b.graph_embedding)
