"""Property-based tests (hypothesis) for :class:`HNSWSearcher`.

Three serving-tier claims, stated as properties over random seeded corpora
rather than a handful of fixtures:

* **Recall floor** — graph search with a generous beam recovers (nearly)
  the exact top-k across dims, corpus sizes and kind filters.
* **Deterministic rebuild** — two fits with the same seed over the same
  index produce bit-identical structures (``structure_digest``), the
  property the hot-swap story and the fault-injection suite lean on.
* **Staleness parity with IVF** — ``needs_refit`` answers exactly like the
  IVF searcher's for every index mutation pattern (append, remove,
  supersede, compact), so the service's refit-on-stale logic is
  algorithm-agnostic.

Plus the persistence contract (``TestPersistence``): a ``save``d graph
``load``s back bit-identically (same ``structure_digest``), ``attach``
proves freshness via the index content fingerprint, and a tampered,
truncated or version-skewed file raises ``IndexFormatError`` rather than
serving a silently wrong graph.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import (
    EmbeddingIndex,
    HNSWSearcher,
    IndexFormatError,
    IVFSearcher,
    exact_topk,
    recall_at_k,
)


def _corpus_index(tmp_path, n, dim, seed, kinds=("cone",), shard_size=64):
    rng = np.random.default_rng(seed)
    # overwrite=True: hypothesis can replay the same example (same seed/n/dim)
    # into one function-scoped tmp_path.
    index = EmbeddingIndex.create(tmp_path / f"ix-{seed}-{n}-{dim}", dim=dim,
                                  shard_size=shard_size, overwrite=True)
    vectors = rng.normal(size=(n, dim))
    kind_row = [kinds[i % len(kinds)] for i in range(n)]
    index.add([f"k{i}" for i in range(n)], vectors, kinds=kind_row)
    return index


class TestRecallFloor:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=30, max_value=300),
        dim=st.integers(min_value=4, max_value=48),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_recall_at_k_meets_floor(self, tmp_path, n, dim, seed):
        index = _corpus_index(tmp_path, n, dim, seed)
        rng = np.random.default_rng(seed + 1)
        queries = rng.normal(size=(8, dim))
        k = min(10, n)
        exact = exact_topk(index, queries, k=k, kind="cone")
        searcher = HNSWSearcher(M=8, ef_construction=48, ef_search=64, seed=0).fit(index)
        approx = searcher.search(queries, k=k)
        # On unclustered Gaussian corpora of this size, a beam ≥ max(ef, k)
        # recovers nearly everything; 0.9 leaves room for genuinely hard
        # random geometries without letting a broken graph pass.
        assert recall_at_k(exact, approx, k=k) >= 0.9

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_kind_filter_never_leaks(self, tmp_path, seed):
        index = _corpus_index(tmp_path, 80, 16, seed, kinds=("cone", "circuit"))
        rng = np.random.default_rng(seed + 1)
        queries = rng.normal(size=(4, 16))
        searcher = HNSWSearcher(M=8, seed=0, kind="circuit").fit(index)
        for row in searcher.search(queries, k=5):
            assert row, "circuit-only search returned nothing"
            assert all(hit.kind == "circuit" for hit in row)

    def test_exclude_keys_respected_without_shrinking_results(self, tmp_path):
        index = _corpus_index(tmp_path, 60, 12, seed=3)
        rng = np.random.default_rng(4)
        queries = rng.normal(size=(3, 12))
        searcher = HNSWSearcher(M=8, seed=0).fit(index)
        baseline = searcher.search(queries, k=5)
        excluded = {hit.key for hit in baseline[0][:2]}
        rows = searcher.search(queries, k=5, exclude_keys=sorted(excluded))
        for row in rows:
            assert len(row) == 5
            assert not excluded & {hit.key for hit in row}


class TestDeterministicRebuild:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=20, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_same_seed_rebuild_is_bit_identical(self, tmp_path, n, seed):
        index = _corpus_index(tmp_path, n, 16, seed)
        a = HNSWSearcher(M=8, ef_construction=40, seed=7).fit(index)
        b = HNSWSearcher(M=8, ef_construction=40, seed=7).fit(index)
        assert a.structure_digest() == b.structure_digest()

    def test_different_seed_changes_structure(self, tmp_path):
        index = _corpus_index(tmp_path, 120, 16, seed=9)
        a = HNSWSearcher(M=8, seed=1).fit(index)
        b = HNSWSearcher(M=8, seed=2).fit(index)
        assert a.structure_digest() != b.structure_digest()

    def test_incremental_sync_matches_full_rebuild_results(self, tmp_path):
        """Appending via sync() must retrieve the new rows (structure may
        legitimately differ from a scratch rebuild — search results on the
        grown corpus are the contract)."""
        index = _corpus_index(tmp_path, 100, 16, seed=5)
        searcher = HNSWSearcher(M=8, ef_search=128, seed=0).fit(index)
        rng = np.random.default_rng(6)
        fresh = rng.normal(size=(20, 16))
        index.add([f"new{i}" for i in range(20)], fresh, kinds="cone")
        added = searcher.sync(index)
        assert added == 20
        assert not searcher.needs_refit(index)
        hits = searcher.search(fresh[:5], k=1)
        assert [row[0].key for row in hits] == [f"new{i}" for i in range(5)]


class TestStalenessParityWithIVF:
    @pytest.fixture()
    def pair(self, tmp_path):
        index = _corpus_index(tmp_path, 60, 12, seed=2)
        hnsw = HNSWSearcher(M=8, seed=0).fit(index)
        ivf = IVFSearcher(num_centroids=8, nprobe=4, seed=0).fit(index)
        return index, hnsw, ivf

    def test_fresh_fit_is_not_stale(self, pair):
        index, hnsw, ivf = pair
        assert hnsw.needs_refit(index) == ivf.needs_refit(index) == False  # noqa: E712

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda ix: ix.add(["extra"], np.ones((1, 12)), kinds="cone"),
            lambda ix: ix.remove(["k0"]),
            lambda ix: ix.add(["k1"], np.ones((1, 12)), kinds="cone"),
            lambda ix: ix.compact(),
        ],
        ids=["append", "remove", "supersede", "compact"],
    )
    def test_every_mutation_marks_both_stale(self, pair, mutate):
        index, hnsw, ivf = pair
        mutate(index)
        assert hnsw.needs_refit(index) is True
        assert hnsw.needs_refit(index) == ivf.needs_refit(index)

    def test_unfitted_searchers_report_stale(self, pair):
        index, _, _ = pair
        assert HNSWSearcher(M=8).needs_refit(index)
        assert IVFSearcher().needs_refit(index)

    def test_clone_params_preserves_tuning_and_drops_fit(self, pair):
        index, hnsw, ivf = pair
        clone = hnsw.clone_params(kind="circuit")
        assert (clone.M, clone.ef_construction, clone.ef_search, clone.seed) == (
            hnsw.M,
            hnsw.ef_construction,
            hnsw.ef_search,
            hnsw.seed,
        )
        assert clone.kind == "circuit" and not clone.is_fitted
        ivf_clone = ivf.clone_params()
        assert ivf_clone.nprobe == ivf.nprobe and not ivf_clone._centroids


class TestPersistence:
    """save()/load()/attach(): the graph is bit-identical or an error."""

    def _saved(self, tmp_path, n=90, seed=12):
        index = _corpus_index(tmp_path, n, 16, seed)
        index.save()
        # Fit against the *saved* state so the stored fingerprint matches
        # what an independent open() of the directory reports.
        searcher = HNSWSearcher(M=8, ef_construction=48, ef_search=64, seed=0)
        searcher.fit(index)
        path = tmp_path / "graph.npz"
        searcher.save(path)
        return index, searcher, path

    def test_save_load_round_trip_is_bit_identical(self, tmp_path):
        _, fitted, path = self._saved(tmp_path)
        loaded = HNSWSearcher.load(path)
        assert loaded.structure_digest() == fitted.structure_digest()
        assert (loaded.M, loaded.ef_construction, loaded.ef_search, loaded.seed,
                loaded.kind) == (fitted.M, fitted.ef_construction,
                                 fitted.ef_search, fitted.seed, fitted.kind)
        rng = np.random.default_rng(13)
        queries = rng.normal(size=(6, 16))
        for a, b in zip(fitted.search(queries, k=5), loaded.search(queries, k=5)):
            assert [(h.key, h.score) for h in a] == [(h.key, h.score) for h in b]

    def test_attach_adopts_generation_only_when_content_matches(self, tmp_path):
        index, _, path = self._saved(tmp_path)
        reopened = EmbeddingIndex.open(index.directory)
        loaded = HNSWSearcher.load(path)
        assert loaded.attach(reopened) is True
        assert not loaded.needs_refit(reopened)

        reopened.add(["moved"], np.ones((1, 16)), kinds="cone")
        reopened.save()
        stale = HNSWSearcher.load(path)
        assert stale.attach(reopened) is False
        assert stale.needs_refit(reopened)

    def test_save_before_fit_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="before fit"):
            HNSWSearcher(M=8).save(tmp_path / "graph.npz")

    def test_tampered_arrays_fail_the_structure_digest(self, tmp_path):
        _, _, path = self._saved(tmp_path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name].copy() for name in payload.files}
        arrays["vectors"][0, 0] += 1e-9  # one flipped mantissa bit is enough
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(IndexFormatError, match="structure digest"):
            HNSWSearcher.load(path)

    def test_garbage_file_raises_index_format_error(self, tmp_path):
        path = tmp_path / "graph.npz"
        path.write_bytes(b"definitely not an npz archive")
        with pytest.raises(IndexFormatError, match="unreadable"):
            HNSWSearcher.load(path)

    def test_unsupported_format_version_raises(self, tmp_path):
        import json as _json

        _, _, path = self._saved(tmp_path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name].copy() for name in payload.files}
        meta = _json.loads(bytes(arrays["meta"]).decode())
        meta["format_version"] = 999
        arrays["meta"] = np.frombuffer(_json.dumps(meta).encode(), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(IndexFormatError, match="format version"):
            HNSWSearcher.load(path)
