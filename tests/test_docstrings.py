"""Public-API docstring gate for the documented subsystems.

Mirrors the ruff pydocstyle selection in ``ruff.toml`` (D100-D104 + D419:
missing/empty docstrings on public modules, classes, methods and functions)
for ``src/repro/{core,serve,train}``, so the gate holds even in
environments without ruff installed.  Privacy follows pydocstyle: a
definition is public only if no component of its dotted path starts with a
single underscore (dunders are exempt as names but methods like
``__init__`` are not *required* to carry docstrings here, matching the
D105/D107 rules staying off).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Tuple

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCUMENTED_SUBSYSTEMS = ("core", "serve", "train")

FILES = sorted(
    path
    for subsystem in DOCUMENTED_SUBSYSTEMS
    for path in (REPO_ROOT / "src" / "repro" / subsystem).glob("*.py")
)


def _is_public_name(name: str) -> bool:
    return not name.startswith("_")


def iter_missing(path: Path) -> Iterator[Tuple[int, str]]:
    """Yield ``(line, description)`` for every missing/empty public docstring."""
    tree = ast.parse(path.read_text())
    docstring = ast.get_docstring(tree)
    if docstring is None or not docstring.strip():
        yield 1, "module docstring (D100/D419)"

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[int, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public_name(child.name):
                    doc = ast.get_docstring(child)
                    if doc is None or not doc.strip():
                        yield child.lineno, f"class {prefix}{child.name} (D101/D419)"
                    yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public_name(child.name):
                    doc = ast.get_docstring(child)
                    if doc is None or not doc.strip():
                        rule = "D102" if prefix else "D103"
                        yield child.lineno, f"def {prefix}{child.name} ({rule}/D419)"

    yield from walk(tree, "")


def test_documented_subsystems_exist():
    assert FILES, "no files found under src/repro/{core,serve,train}"
    packages = {
        REPO_ROOT / "src" / "repro" / subsystem / "__init__.py"
        for subsystem in DOCUMENTED_SUBSYSTEMS
    }
    assert packages <= set(FILES)


@pytest.mark.parametrize("path", FILES, ids=lambda p: f"{p.parent.name}/{p.name}")
def test_public_api_is_documented(path):
    missing: List[str] = [
        f"{path.relative_to(REPO_ROOT)}:{line}: missing {what}"
        for line, what in iter_missing(path)
    ]
    assert not missing, "\n".join(missing)
