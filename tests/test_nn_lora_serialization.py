"""Tests for LoRA adapters and checkpoint serialization in the nn framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestLoRA:
    def test_lora_linear_starts_as_identity_update(self):
        rng = np.random.default_rng(0)
        base = nn.Linear(6, 4, rng=rng)
        lora = nn.LoRALinear(base, rank=2, alpha=4.0, rng=rng)
        x = Tensor(rng.normal(size=(3, 6)))
        assert np.allclose(lora(x).data, base(x).data)  # B starts at zero

    def test_lora_update_changes_output_after_training_step(self):
        rng = np.random.default_rng(1)
        base = nn.Linear(5, 3, rng=rng)
        lora = nn.LoRALinear(base, rank=2, rng=rng)
        x = Tensor(rng.normal(size=(4, 5)))
        target = rng.normal(size=(4, 3))
        optimizer = nn.Adam([lora.lora_a, lora.lora_b], lr=0.05)
        before = lora(x).data.copy()
        for _ in range(5):
            loss = nn.mse_loss(lora(x), target)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        after = lora(x).data
        assert not np.allclose(before, after)
        # The frozen base projection itself is unchanged.
        assert np.allclose(lora.merged_weight() - base.weight.data,
                           lora.scaling * (lora.lora_a.data @ lora.lora_b.data))

    def test_invalid_rank_rejected(self):
        base = nn.Linear(4, 4)
        with pytest.raises(ValueError):
            nn.LoRALinear(base, rank=0)

    def test_apply_lora_wraps_every_linear(self):
        rng = np.random.default_rng(2)
        mlp = nn.MLP(8, 3, hidden_sizes=(6,), rng=rng)
        wrapped = nn.apply_lora(mlp, rank=2, rng=rng)
        assert wrapped >= 2  # an MLP with one hidden layer has two Linear projections
        lora_params = [name for name, _ in mlp.named_parameters() if "lora_" in name]
        assert len(lora_params) == 2 * wrapped
        out = mlp(Tensor(rng.normal(size=(2, 8))))
        assert out.data.shape == (2, 3)


class TestSerialization:
    def test_checkpoint_round_trip(self, tmp_path):
        rng = np.random.default_rng(3)
        model = nn.MLP(6, 2, hidden_sizes=(5,), rng=rng)
        x = Tensor(rng.normal(size=(3, 6)))
        reference = model(x).data.copy()
        path = nn.save_checkpoint(model, tmp_path / "model.npz", metadata={"step": 7})

        fresh = nn.MLP(6, 2, hidden_sizes=(5,), rng=np.random.default_rng(99))
        assert not np.allclose(fresh(x).data, reference)
        metadata = nn.load_checkpoint(fresh, path)
        assert metadata.get("step") == 7
        assert np.allclose(fresh(x).data, reference)

    def test_load_into_mismatched_model_fails(self, tmp_path):
        model = nn.MLP(6, 2, hidden_sizes=(5,), rng=np.random.default_rng(4))
        path = nn.save_checkpoint(model, tmp_path / "model.npz")
        other = nn.MLP(7, 2, hidden_sizes=(5,), rng=np.random.default_rng(5))
        with pytest.raises(Exception):
            nn.load_checkpoint(other, path)
