"""Tests for the model encoders: ExprLLM, TAGFormer, auxiliary encoders, baseline GNNs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoders import (
    ExprLLM,
    GNNConfig,
    GNNEncoder,
    HashingTokenizer,
    LayoutEncoder,
    RTLEncoder,
    TAGFormer,
    TAGFormerConfig,
    TextEncoder,
    TextEncoderConfig,
    augment_layout_graph,
    augment_rtl_text,
    pretrain_layout_encoder,
    pretrain_rtl_encoder,
)
from repro.netlist import build_graph_view, netlist_to_tag
from repro.physical import build_layout_graph


class TestHashingTokenizer:
    def test_encode_shapes_and_padding(self):
        tokenizer = HashingTokenizer(num_buckets=64, max_length=16)
        ids, mask = tokenizer.encode("assign y = a & b;")
        assert len(ids) == 16 and len(mask) == 16
        assert ids[0] == tokenizer.cls_id
        assert mask[-1] is False

    def test_same_token_same_bucket(self):
        tokenizer = HashingTokenizer()
        first, _ = tokenizer.encode("wire", pad=False, add_cls=False)
        second, _ = tokenizer.encode("wire wire", pad=False, add_cls=False)
        assert second[0] == second[1] == first[0]

    def test_bucket_bounds(self):
        tokenizer = HashingTokenizer(num_buckets=32)
        ids, _ = tokenizer.encode("module foo (a, b); endmodule")
        assert max(ids) < tokenizer.vocab_size

    def test_minimum_bucket_count_enforced(self):
        with pytest.raises(ValueError):
            HashingTokenizer(num_buckets=2)


class TestTextEncoder:
    def test_output_shape_and_determinism(self):
        config = TextEncoderConfig.preset("small")
        encoder = TextEncoder(vocab_size=128, config=config, rng=np.random.default_rng(0))
        ids = np.array([[1, 5, 9, 0, 0], [1, 7, 0, 0, 0]])
        mask = ids != 0
        first = encoder.encode_numpy(ids, mask)
        second = encoder.encode_numpy(ids, mask)
        assert first.shape == (2, config.output_dim)
        assert np.allclose(first, second)

    def test_padding_does_not_change_embedding(self):
        config = TextEncoderConfig.preset("small")
        encoder = TextEncoder(vocab_size=128, config=config, rng=np.random.default_rng(0))
        short = encoder.encode_numpy(np.array([[1, 5, 9]]), np.array([[True, True, True]]))
        padded = encoder.encode_numpy(
            np.array([[1, 5, 9, 0, 0, 0]]),
            np.array([[True, True, True, False, False, False]]),
        )
        assert np.allclose(short, padded, atol=1e-8)

    def test_presets_are_ordered_by_capacity(self):
        small = TextEncoderConfig.preset("small")
        medium = TextEncoderConfig.preset("medium")
        large = TextEncoderConfig.preset("large")
        assert small.approx_parameters < medium.approx_parameters < large.approx_parameters

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            TextEncoderConfig.preset("gigantic")


class TestExprLLM:
    @pytest.fixture(scope="class")
    def expr_llm(self):
        return ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(1))

    def test_embeddings_are_unit_norm(self, expr_llm):
        embeddings = expr_llm.encode_texts(["[Type] NAND2 [Expr] y = !(a & b)", "[Type] INV"])
        norms = np.linalg.norm(embeddings, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-6)

    def test_identical_structure_different_names_share_embedding(self, expr_llm):
        """Canonical variable tokens: renaming operands must not change the embedding."""
        a = expr_llm.encode_texts(["[Type] NOR2 [Expr] u1 = !((r1 ^ r2) | !r2)"])
        b = expr_llm.encode_texts(["[Type] NOR2 [Expr] g9 = !((sig_a ^ sig_b) | !sig_b)"])
        assert np.allclose(a, b, atol=1e-9)

    def test_different_functions_differ(self, expr_llm):
        a = expr_llm.encode_texts(["[Type] NOR2 [Expr] u1 = !(a | b)"])
        b = expr_llm.encode_texts(["[Type] XOR2 [Expr] u1 = a ^ b"])
        assert not np.allclose(a, b)

    def test_cache_round_trip(self, expr_llm):
        text = "[Type] AND2 [Expr] y = a & b"
        first = expr_llm.encode_texts([text])
        second = expr_llm.encode_texts([text])
        assert np.allclose(first, second)
        expr_llm.clear_cache()
        third = expr_llm.encode_texts([text])
        assert np.allclose(first, third)

    def test_enable_lora_adds_trainable_parameters(self):
        model = ExprLLM(TextEncoderConfig.preset("small"), rng=np.random.default_rng(2))
        baseline_params = len(list(model.backbone.parameters()))
        wrapped = model.enable_lora(rank=2)
        assert wrapped > 0
        lora_params = model.trainable_parameters()
        assert 0 < len(lora_params) < baseline_params + 2 * wrapped
        # Forward still works after wrapping.
        out = model.encode_texts(["[Type] INV [Expr] y = !a"])
        assert out.shape[1] == model.output_dim


class TestTAGFormer:
    def test_node_and_graph_embedding_shapes(self, comb_netlist):
        tag = netlist_to_tag(comb_netlist)
        config = TAGFormerConfig(input_dim=4, dim=16, depth=1, num_heads=2, output_dim=8)
        model = TAGFormer(config, rng=np.random.default_rng(0))
        features = np.random.default_rng(0).normal(size=(tag.num_nodes, 4))
        nodes, graph = model.encode_numpy(features, tag.graph.adjacency)
        assert nodes.shape == (tag.num_nodes, 8)
        assert graph.shape == (8,)

    def test_embeddings_depend_on_structure(self):
        """Node embeddings react to the adjacency; with >=2 layers so does the [CLS] readout.

        (With a single layer the [CLS] node, which is connected to every node,
        aggregates the same multiset of layer-0 node states for any topology,
        so the graph embedding only becomes structure-sensitive at depth 2.)
        """
        features = np.random.default_rng(1).normal(size=(5, 3))
        chain = np.eye(5) + np.diag(np.ones(4), 1) + np.diag(np.ones(4), -1)
        star = np.eye(5)
        star[0, :] = 1.0
        star[:, 0] = 1.0
        chain_adj = chain / chain.sum(1, keepdims=True)
        star_adj = star / star.sum(1, keepdims=True)

        shallow = TAGFormer(
            TAGFormerConfig(input_dim=3, dim=16, depth=1, num_heads=2, output_dim=8),
            rng=np.random.default_rng(0),
        )
        chain_nodes, _ = shallow.encode_numpy(features, chain_adj)
        star_nodes, _ = shallow.encode_numpy(features, star_adj)
        assert not np.allclose(chain_nodes, star_nodes)

        deep = TAGFormer(
            TAGFormerConfig(input_dim=3, dim=16, depth=2, num_heads=2, output_dim=8),
            rng=np.random.default_rng(0),
        )
        _, chain_graph = deep.encode_numpy(features, chain_adj)
        _, star_graph = deep.encode_numpy(features, star_adj)
        assert not np.allclose(chain_graph, star_graph)

    def test_single_node_graph(self):
        config = TAGFormerConfig(input_dim=3, dim=8, depth=1, num_heads=2, output_dim=4)
        model = TAGFormer(config, rng=np.random.default_rng(0))
        nodes, graph = model.encode_numpy(np.ones((1, 3)), np.ones((1, 1)))
        assert nodes.shape == (1, 4)
        assert np.all(np.isfinite(graph))


class TestAuxiliaryEncoders:
    def test_rtl_encoder_shapes_and_cache(self):
        encoder = RTLEncoder(rng=np.random.default_rng(0))
        texts = ["assign y = a + b;", "always @(posedge clk) r <= d;"]
        embeddings = encoder.encode_texts(texts)
        assert embeddings.shape == (2, encoder.output_dim)
        assert np.allclose(embeddings, encoder.encode_texts(texts))

    def test_augment_rtl_text_preserves_tokens_roughly(self):
        rng = np.random.default_rng(0)
        original = "assign y = a + b; // adder\nassign z = a & b;"
        augmented = augment_rtl_text(original, rng)
        assert isinstance(augmented, str)
        assert len(augmented) > 0

    def test_pretrain_rtl_encoder_runs(self):
        encoder = RTLEncoder(rng=np.random.default_rng(0))
        texts = [f"assign y{i} = a{i} + b{i};" for i in range(4)]
        pretrain_rtl_encoder(encoder, texts, num_steps=2, seed=0)
        embeddings = encoder.encode_texts(texts[:2])
        assert embeddings.shape == (2, encoder.output_dim)
        assert np.all(np.isfinite(embeddings))

    def test_layout_encoder_embedding(self, tiny_netlist):
        layout = build_layout_graph(tiny_netlist)
        encoder = LayoutEncoder(dim=16, depth=1, output_dim=8, rng=np.random.default_rng(0))
        embedding = encoder.encode(layout)
        assert embedding.shape == (8,)
        assert np.all(np.isfinite(embedding))

    def test_augment_layout_graph_jitters_features(self, tiny_netlist):
        layout = build_layout_graph(tiny_netlist)
        augmented = augment_layout_graph(layout, np.random.default_rng(0), noise=0.1)
        assert augmented.node_features.shape == layout.node_features.shape
        assert not np.allclose(augmented.node_features, layout.node_features)

    def test_pretrain_layout_encoder_runs(self, tiny_netlist, seq_netlist):
        layouts = [build_layout_graph(tiny_netlist), build_layout_graph(seq_netlist)]
        encoder = LayoutEncoder(dim=16, depth=1, output_dim=8, rng=np.random.default_rng(0))
        pretrain_layout_encoder(encoder, layouts, num_steps=2, seed=0)


class TestBaselineGNN:
    def test_gnn_encoder_shapes(self, comb_netlist):
        view = build_graph_view(comb_netlist)
        config = GNNConfig(input_dim=6, hidden_dim=16, depth=2, output_dim=8)
        encoder = GNNEncoder(config, rng=np.random.default_rng(0))
        features = np.random.default_rng(0).normal(size=(view.num_nodes, 6))
        nodes, graph = encoder.encode_numpy(features, view.adjacency)
        assert nodes.shape == (view.num_nodes, 8)
        assert graph.shape == (8,)

    def test_global_attention_variant(self, tiny_netlist):
        view = build_graph_view(tiny_netlist)
        config = GNNConfig(input_dim=4, hidden_dim=8, depth=1, output_dim=4, use_global_attention=True)
        encoder = GNNEncoder(config, rng=np.random.default_rng(0))
        features = np.ones((view.num_nodes, 4))
        nodes, _ = encoder.encode_numpy(features, view.adjacency)
        assert np.all(np.isfinite(nodes))
