"""Tests for the gate-level netlist IR (repro.netlist.core)."""

from __future__ import annotations

import pytest

from repro.netlist import Netlist, NetlistError


@pytest.fixture()
def empty(library):
    return Netlist("unit", library=library)


class TestConstruction:
    def test_add_gate_with_ordered_inputs(self, empty):
        empty.add_primary_input("a")
        empty.add_primary_input("b")
        gate = empty.add_gate("u1", "AND2_X1", ["a", "b"], "y")
        assert gate.inputs == {"A": "a", "B": "b"}
        assert empty.driver("y") is gate

    def test_add_gate_with_pin_map(self, empty):
        empty.add_primary_input("a")
        gate = empty.add_gate("u1", "INV_X1", {"A": "a"}, "y")
        assert gate.input_nets == ["a"]

    def test_add_gate_attributes_are_stored(self, empty):
        empty.add_primary_input("a")
        gate = empty.add_gate("u1", "INV_X1", ["a"], "y", block="adder")
        assert gate.attributes["block"] == "adder"

    def test_duplicate_gate_name_rejected(self, empty):
        empty.add_primary_input("a")
        empty.add_gate("u1", "INV_X1", ["a"], "y")
        with pytest.raises(NetlistError):
            empty.add_gate("u1", "INV_X1", ["a"], "z")

    def test_multiple_drivers_rejected(self, empty):
        empty.add_primary_input("a")
        empty.add_gate("u1", "INV_X1", ["a"], "y")
        with pytest.raises(NetlistError):
            empty.add_gate("u2", "BUF_X1", ["a"], "y")

    def test_driving_primary_input_rejected(self, empty):
        empty.add_primary_input("a")
        with pytest.raises(NetlistError):
            empty.add_gate("u1", "INV_X1", ["a"], "a")

    def test_wrong_input_arity_rejected(self, empty):
        empty.add_primary_input("a")
        with pytest.raises(NetlistError):
            empty.add_gate("u1", "AND2_X1", ["a"], "y")

    def test_unknown_pin_rejected(self, empty):
        empty.add_primary_input("a")
        with pytest.raises(NetlistError):
            empty.add_gate("u1", "INV_X1", {"Q": "a"}, "y")

    def test_unknown_cell_rejected(self, empty):
        empty.add_primary_input("a")
        with pytest.raises(KeyError):
            empty.add_gate("u1", "MYSTERY_X1", ["a"], "y")

    def test_primary_input_cannot_be_driven_net(self, empty):
        empty.add_primary_input("a")
        empty.add_gate("u1", "INV_X1", ["a"], "y")
        with pytest.raises(NetlistError):
            empty.add_primary_input("y")

    def test_remove_gate_clears_driver(self, empty):
        empty.add_primary_input("a")
        empty.add_gate("u1", "INV_X1", ["a"], "y")
        empty.remove_gate("u1")
        assert empty.driver("y") is None
        assert empty.num_gates == 0


class TestLookups:
    def test_fanin_fanout(self, tiny_netlist):
        xor_fanout = [g.name for g in tiny_netlist.fanout_gates("u_xor")]
        assert xor_fanout == ["u_or"]
        or_fanin = sorted(g.name for g in tiny_netlist.fanin_gates("u_or"))
        assert or_fanin == ["u_inv", "u_xor"]

    def test_loads_and_load_map_agree(self, tiny_netlist):
        load_map = tiny_netlist.build_load_map()
        for net in tiny_netlist.nets:
            assert sorted(g.name for g in tiny_netlist.loads(net)) == sorted(
                g.name for g in load_map.get(net, [])
            )

    def test_driver_of_primary_input_is_none(self, tiny_netlist):
        assert tiny_netlist.driver("a") is None

    def test_registers_and_combinational_partition(self, tiny_netlist):
        names = {g.name for g in tiny_netlist.registers}
        assert names == {"r_state"}
        comb = {g.name for g in tiny_netlist.combinational_gates}
        assert comb == {"u_xor", "u_inv", "u_or", "u_out"}
        assert tiny_netlist.is_sequential_design()

    def test_nets_cover_all_pins(self, tiny_netlist):
        nets = set(tiny_netlist.nets)
        for gate in tiny_netlist.gates.values():
            assert gate.output in nets
            assert set(gate.input_nets) <= nets

    def test_cell_type_counts(self, tiny_netlist):
        counts = tiny_netlist.cell_type_counts()
        assert counts["INV"] == 2
        assert counts["XOR2"] == 1
        assert counts["DFF"] == 1

    def test_total_area_is_sum_of_cells(self, tiny_netlist):
        expected = sum(tiny_netlist.cell_of(g).area for g in tiny_netlist.gates.values())
        assert tiny_netlist.total_area() == pytest.approx(expected)


class TestTraversal:
    def test_topological_order_respects_dependencies(self, comb_netlist):
        order = {g.name: i for i, g in enumerate(comb_netlist.topological_order())}
        for gate in comb_netlist.gates.values():
            if comb_netlist.is_register(gate):
                continue
            for fanin in comb_netlist.fanin_gates(gate):
                if comb_netlist.is_register(fanin):
                    continue
                assert order[fanin.name] < order[gate.name]

    def test_topological_order_contains_every_gate_once(self, seq_netlist):
        order = seq_netlist.topological_order()
        assert len(order) == seq_netlist.num_gates
        assert len({g.name for g in order}) == seq_netlist.num_gates

    def test_topological_order_excluding_registers(self, seq_netlist):
        order = seq_netlist.topological_order(include_registers=False)
        assert all(not seq_netlist.is_register(g) for g in order)

    def test_combinational_cycle_detected(self, library):
        netlist = Netlist("cycle", library=library)
        netlist.add_primary_input("a")
        netlist.add_gate("u1", "AND2_X1", ["a", "y2"], "y1")
        netlist.add_gate("u2", "INV_X1", ["y1"], "y2")
        with pytest.raises(NetlistError):
            netlist.topological_order()

    def test_register_feedback_is_not_a_cycle(self, library):
        """A register feeding its own cone must not count as a combinational cycle."""
        netlist = Netlist("feedback", library=library)
        netlist.add_primary_input("a")
        netlist.add_gate("u1", "XOR2_X1", ["a", "q"], "d")
        netlist.add_gate("r1", "DFF_X1", {"D": "d"}, "q")
        order = [g.name for g in netlist.topological_order()]
        assert set(order) == {"u1", "r1"}

    def test_validate_passes_for_synthesised_netlists(self, comb_netlist, seq_netlist):
        comb_netlist.validate()
        seq_netlist.validate()

    def test_validate_rejects_undriven_pin(self, library):
        netlist = Netlist("undriven", library=library)
        netlist.add_primary_input("a")
        netlist.add_gate("u1", "AND2_X1", ["a", "ghost"], "y")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_validate_rejects_undriven_output(self, library):
        netlist = Netlist("floating_out", library=library)
        netlist.add_primary_input("a")
        netlist.add_primary_output("nowhere")
        with pytest.raises(NetlistError):
            netlist.validate()


class TestCopy:
    def test_copy_is_deep_for_gates(self, tiny_netlist):
        clone = tiny_netlist.copy()
        clone.gates["u_xor"].attributes["marker"] = True
        assert "marker" not in tiny_netlist.gates["u_xor"].attributes

    def test_copy_preserves_structure(self, comb_netlist):
        clone = comb_netlist.copy("renamed")
        assert clone.name == "renamed"
        assert clone.num_gates == comb_netlist.num_gates
        assert clone.primary_inputs == comb_netlist.primary_inputs
        assert clone.primary_outputs == comb_netlist.primary_outputs
        assert clone.cell_type_counts() == comb_netlist.cell_type_counts()

    def test_copy_shares_library(self, tiny_netlist):
        assert tiny_netlist.copy().library is tiny_netlist.library
