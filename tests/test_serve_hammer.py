"""Concurrency hammer: queries vs ingest vs hot-swap, adversarially.

Extends the PR 5 drain-race regression tests to the read/write-split
serving tier (ISSUE 9 satellite).  The invariants hammered here:

* **No dropped or hung futures** — every submitted request resolves
  (result or exception) within a bounded wait, whatever the interleaving
  of queries, ingest and hot swaps.
* **Generation consistency** — a response reflects *some single*
  generation of the index: rows added atomically in one ``add`` appear
  together or not at all, and a response never mixes rows of two
  hot-swapped corpora.
* **Stats conservation** — after a drain the scheduler's counters satisfy
  ``submitted == completed + failed`` with nothing pending, and the
  frontend's per-kind counters balance the same way.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.netlist import extract_register_cones
from repro.rtl import make_controller
from repro.serve import (
    AdmissionError,
    AsyncFrontend,
    DeadlineExceeded,
    FrontendClosed,
    NetTAGService,
    SchedulerClosed,
)
from repro.synth import synthesize

QUERY_THREADS = 4
INGEST_THREADS = 2
QUERIES_PER_THREAD = 25
RESULT_TIMEOUT = 30.0


@pytest.fixture(scope="module")
def corpus():
    net_a = synthesize(make_controller("ham_a", seed=41, num_states=4, data_width=4)).netlist
    net_b = synthesize(make_controller("ham_b", seed=42, num_states=5, data_width=3)).netlist
    return [net_a, net_b]


@pytest.fixture(scope="module")
def cones(corpus):
    return extract_register_cones(corpus[0])


@pytest.fixture()
def service(small_model, corpus, tmp_path):
    index = NetTAGService.create_index(small_model, tmp_path / "hammer", shard_size=32)
    with NetTAGService(small_model, index=index, max_latency_ms=2.0) as svc:
        svc.add_netlists(corpus)
        yield svc


class TestQueryIngestHammer:
    def test_queries_never_drop_while_ingest_and_compact_run(self, service, cones):
        """N query threads + M ingest threads + a compact/hot-swap loop."""
        errors: list = []
        stop = threading.Event()
        resolved = [0]
        resolved_lock = threading.Lock()

        def query_worker(slot: int) -> None:
            rng = np.random.default_rng(slot)
            try:
                for i in range(QUERIES_PER_THREAD):
                    cone = cones[int(rng.integers(0, len(cones)))]
                    future = service.submit_query_cone(cone, k=3)
                    hits = future.result(timeout=RESULT_TIMEOUT)
                    assert hits, "query returned no hits"
                    with resolved_lock:
                        resolved[0] += 1
            except Exception as error:  # noqa: BLE001 - collected for the assert
                errors.append(error)

        def ingest_worker(slot: int) -> None:
            try:
                batch = 0
                while not stop.is_set():
                    service.add_cones(f"ingest{slot}_{batch}", cones[:3], flush=False)
                    batch += 1
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def maintenance_worker() -> None:
            try:
                while not stop.is_set():
                    service.compact()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=query_worker, args=(slot,))
            for slot in range(QUERY_THREADS)
        ]
        threads += [
            threading.Thread(target=ingest_worker, args=(slot,), daemon=True)
            for slot in range(INGEST_THREADS)
        ]
        threads.append(threading.Thread(target=maintenance_worker, daemon=True))
        for thread in threads:
            thread.start()
        for thread in threads[:QUERY_THREADS]:
            thread.join(timeout=300)
            assert not thread.is_alive(), "query thread hung"
        stop.set()
        for thread in threads[QUERY_THREADS:]:
            thread.join(timeout=60)
            assert not thread.is_alive(), "background thread hung"

        assert not errors, errors
        assert resolved[0] == QUERY_THREADS * QUERIES_PER_THREAD
        stats = service.stats()
        scheduler = stats["scheduler"]
        assert scheduler["submitted"] == scheduler["completed"] + scheduler["failed"] + scheduler["pending"]
        assert stats["snapshots"]["pinned_readers"] == 0

    def test_scheduler_conserves_counts_after_drain(self, service, cones):
        futures = [service.submit_query_cone(cones[i % len(cones)], k=2) for i in range(40)]
        service._scheduler.close()
        outcomes = 0
        for future in futures:
            try:
                assert future.result(timeout=RESULT_TIMEOUT)
                outcomes += 1
            except SchedulerClosed:
                outcomes += 1
        assert outcomes == len(futures), "a future was dropped"
        stats = service._scheduler.stats()
        assert stats["submitted"] == stats["completed"] + stats["failed"]
        assert stats["pending"] == 0


class TestGenerationConsistency:
    def test_atomic_pairs_appear_together_or_not_at_all(self, service, small_model):
        """Rows added in one ``add`` call are visible atomically to readers."""
        index = service.index
        dim = small_model.index_dim
        rng = np.random.default_rng(77)
        marker = rng.normal(size=dim)
        marker /= np.linalg.norm(marker)
        errors: list = []
        stop = threading.Event()

        def writer() -> None:
            try:
                for i in range(60):
                    pair = np.stack([marker, marker])
                    with service._lock:
                        index.add([f"pair{i}_a", f"pair{i}_b"], pair, kinds="cone")
                        service._refresh_snapshot()
            except Exception as error:  # noqa: BLE001
                errors.append(error)
            finally:
                stop.set()

        def reader() -> None:
            try:
                while not stop.is_set():
                    hits = service.query_embedding(marker, k=2, kind="cone")
                    keys = {hit.key for hit in hits}
                    pair_keys = {key for key in keys if key.startswith("pair")}
                    if pair_keys:
                        # Top-2 for the marker vector is exactly one atomic
                        # pair (all pairs score 1.0; ties broken by
                        # insertion order) — seeing only half a pair means a
                        # torn read.
                        suffixes = {key.split("_")[-1] for key in pair_keys}
                        ids = {key.split("_")[0] for key in pair_keys}
                        assert len(ids) == 1 and suffixes == {"a", "b"}, (
                            f"torn read: {keys}"
                        )
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "hammer thread hung"
        assert not errors, errors

    def test_hot_swap_responses_never_mix_corpora(self, service, small_model, tmp_path):
        """Under a swap loop, each response's rows come from one corpus."""
        dim = small_model.index_dim
        rng = np.random.default_rng(5)
        probe = rng.normal(size=dim)
        probe /= np.linalg.norm(probe)

        def build(tag: str):
            index = NetTAGService.create_index(
                small_model, tmp_path / f"swap-{tag}", shard_size=32, overwrite=True
            )
            noise = rng.normal(size=(20, dim)) * 0.01
            index.add([f"{tag}_{i}" for i in range(20)], probe + noise, kinds="cone")
            index.save()
            return index

        index_a, index_b = build("A"), build("B")
        service.swap_index(index_a)
        errors: list = []
        stop = threading.Event()

        def swapper() -> None:
            try:
                for i in range(40):
                    service.swap_index(index_b if i % 2 == 0 else index_a)
            except Exception as error:  # noqa: BLE001
                errors.append(error)
            finally:
                stop.set()

        def reader() -> None:
            try:
                while not stop.is_set():
                    hits = service.query_embedding(probe, k=5, kind="cone")
                    prefixes = {hit.key.split("_")[0] for hit in hits}
                    assert len(prefixes) == 1, f"mixed-corpus response: {prefixes}"
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=swapper)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "swap hammer thread hung"
        assert not errors, errors


class TestFrontendDrainRace:
    """The PR 5 drain-race regressions, restated against the async front end."""

    def test_submissions_racing_drain_resolve_or_refuse(self, service, cones):
        async def main():
            frontend = AsyncFrontend(service, limits={"query": 64})

            async def client(i: int):
                try:
                    return await frontend.query_cone(cones[i % len(cones)], k=2)
                except (FrontendClosed, AdmissionError, DeadlineExceeded) as error:
                    return error

            tasks = [asyncio.ensure_future(client(i)) for i in range(30)]
            await asyncio.sleep(0.01)
            drain = asyncio.ensure_future(frontend.aclose())
            tasks += [asyncio.ensure_future(client(100 + i)) for i in range(10)]
            results = await asyncio.wait_for(asyncio.gather(*tasks), timeout=120)
            await drain

            assert len(results) == 40, "a frontend future was dropped"
            hung = [r for r in results if r is None]
            assert not hung
            kinds = frontend.stats()["kinds"]["query"]
            assert (
                kinds["admitted"]
                == kinds["completed"] + kinds["failed"] + kinds["timeouts"]
            )
            assert kinds["inflight"] == 0
            served = sum(1 for r in results if isinstance(r, list))
            assert served >= 1, "drain refused everything, including pre-drain work"

        asyncio.run(main())
