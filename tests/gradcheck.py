"""Finite-difference gradient checking helpers for the autograd engine.

``gradcheck`` compares the reverse-mode gradients produced by
:class:`repro.nn.Tensor` against central finite differences of the same
scalar-valued function.  It is deliberately simple (dense loop over every
input element), so callers should keep test arrays small.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import Tensor, use_backend


def numerical_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` with respect to ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_grad = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = fn(x)
        flat_x[i] = original - eps
        minus = fn(x)
        flat_x[i] = original
        flat_grad[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of ``fn(*tensors) -> scalar Tensor`` are correct.

    Every input gets ``requires_grad=True``; the autograd gradient of the
    scalar output with respect to each input is compared against central
    finite differences (all other inputs held fixed).

    The check runs under the ``reference`` kernel backend regardless of the
    process-wide setting: central differences at ``eps=1e-6`` are meaningless
    in float32, and gradcheck's contract is the float64 semantics.
    """
    with use_backend("reference"):
        arrays = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        out = fn(*tensors)
        if out.size != 1:
            raise ValueError("gradcheck requires a scalar-valued function")
        out.backward()

        for position, tensor in enumerate(tensors):
            assert tensor.grad is not None, f"no gradient reached input {position}"

            def scalar(perturbed: np.ndarray, position: int = position) -> float:
                probe = [
                    Tensor(perturbed if i == position else a)
                    for i, a in enumerate(arrays)
                ]
                value = fn(*probe)
                return float(value.data.reshape(-1)[0])

            numeric = numerical_gradient(scalar, arrays[position], eps=eps)
            np.testing.assert_allclose(
                tensor.grad,
                numeric,
                atol=atol,
                rtol=rtol,
                err_msg=f"analytic/numeric gradient mismatch for input {position}",
            )
