"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from gradcheck import gradcheck
from repro.nn import Tensor, layer_norm

from repro.expr import (
    And,
    Const,
    Expr,
    ExprTokenizer,
    Not,
    Or,
    Var,
    Xor,
    equivalent,
    parse,
    random_equivalent,
    simplify_constants,
    truth_table,
)
from repro.ml import accuracy, balanced_accuracy, mape, pearson_r
from repro.netlist import Netlist, build_graph_view, read_verilog, write_verilog
from repro.synth import constant_bits, ripple_carry_add, shift_add_multiply

# ----------------------------------------------------------------------
# Expression strategies
# ----------------------------------------------------------------------
VARIABLES = ("a", "b", "c", "d")


def expressions(max_depth: int = 3) -> st.SearchStrategy[Expr]:
    base = st.one_of(
        st.sampled_from([Var(v) for v in VARIABLES]),
        st.sampled_from([Const(True), Const(False)]),
    )

    def extend(children: st.SearchStrategy[Expr]) -> st.SearchStrategy[Expr]:
        return st.one_of(
            st.builds(Not, children),
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Xor, children, children),
        )

    return st.recursive(base, extend, max_leaves=2 ** max_depth)


class TestExpressionProperties:
    @given(expressions())
    @settings(max_examples=60, deadline=None)
    def test_print_parse_round_trip(self, expr):
        assert equivalent(parse(expr.to_string()), expr)

    @given(expressions(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_equivalent_preserves_truth_table(self, expr, seed):
        rewritten = random_equivalent(expr, rng=np.random.default_rng(seed), num_rewrites=3)
        assert equivalent(expr, rewritten)

    @given(expressions())
    @settings(max_examples=40, deadline=None)
    def test_constant_simplification_is_equivalence_preserving(self, expr):
        assert equivalent(simplify_constants(expr), expr)

    @given(expressions())
    @settings(max_examples=40, deadline=None)
    def test_truth_table_size(self, expr):
        variables, rows = truth_table(expr)
        assert tuple(variables) == tuple(sorted(expr.variables()))
        assert rows.shape == (2 ** len(variables),)

    @given(expressions())
    @settings(max_examples=40, deadline=None)
    def test_tokenizer_is_deterministic_and_bounded(self, expr):
        tokenizer = ExprTokenizer(max_length=64)
        ids_a, mask_a = tokenizer.encode(expr.to_string())
        ids_b, mask_b = tokenizer.encode(expr.to_string())
        assert ids_a == ids_b and mask_a == mask_b
        assert len(ids_a) == 64
        assert max(ids_a) < tokenizer.vocab_size

    @given(expressions())
    @settings(max_examples=40, deadline=None)
    def test_canonical_variable_tokens_are_name_independent(self, expr):
        """Renaming every variable consistently must not change the token stream."""
        from repro.expr import substitute

        tokenizer = ExprTokenizer()
        mapping = {name: Var(f"sig_{i}_long_name") for i, name in enumerate(VARIABLES)}
        renamed = substitute(expr, mapping)
        assert tokenizer.tokenize(expr.to_string()) == tokenizer.tokenize(renamed.to_string())


class TestArithmeticProperties:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_ripple_carry_add_matches_integer_addition(self, a, b):
        width = 8
        bits = ripple_carry_add(constant_bits(a, width), constant_bits(b, width))
        value = sum((1 << i) for i, bit in enumerate(bits) if bit.evaluate({}))
        assert value == (a + b) % (1 << len(bits))

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_multiplier_matches_integer_multiplication(self, a, b):
        width = 4
        bits = shift_add_multiply(constant_bits(a, width), constant_bits(b, width))
        value = sum((1 << i) for i, bit in enumerate(bits) if bit.evaluate({}))
        assert value == (a * b) % (1 << len(bits))


class TestMetricProperties:
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_accuracy_of_perfect_predictions_is_one(self, labels):
        assert accuracy(labels, labels) == 1.0
        assert 0.0 <= balanced_accuracy(labels, [1 - l if l in (0, 1) else l for l in labels]) <= 1.0

    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_pearson_r_is_bounded(self, values):
        noise = [v * 0.5 + 1.0 for v in values]
        r = pearson_r(values, noise)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9

    @given(st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_mape_of_exact_predictions_is_zero(self, values):
        assert mape(values, values) == pytest.approx(0.0, abs=1e-9)


# ----------------------------------------------------------------------
# Autograd gradient properties (finite-difference checks)
# ----------------------------------------------------------------------
_DIMS = st.integers(min_value=1, max_value=3)
_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestGradientProperties:
    """The autograd engine must agree with central finite differences."""

    @given(_DIMS, _DIMS, _DIMS, _SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_matmul_gradients(self, n, k, m, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, k))
        b = rng.normal(size=(k, m))
        gradcheck(lambda x, y: (x @ y).sum(), [a, b])

    @given(_DIMS, _DIMS, _DIMS, _DIMS, _SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_batched_matmul_gradients(self, batch, n, k, m, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(batch, n, k))
        b = rng.normal(size=(k, m))
        gradcheck(lambda x, y: (x @ y).sum(), [a, b])

    @given(st.sampled_from(["add", "mul", "sub", "div"]), _DIMS, _DIMS, _SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_broadcasting_elementwise_gradients(self, op, n, m, seed):
        """Elementwise ops must unbroadcast gradients back to (m,) and (n, 1)."""
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, m))
        row = rng.uniform(0.5, 2.0, size=(m,))          # safe as a denominator
        col = rng.uniform(0.5, 2.0, size=(n, 1))
        ops = {
            "add": lambda x, y: (x + y),
            "mul": lambda x, y: (x * y),
            "sub": lambda x, y: (x - y),
            "div": lambda x, y: (x / y),
        }
        fn = ops[op]
        gradcheck(lambda x, y: fn(x, y).sum(), [a, row])
        gradcheck(lambda x, y: fn(x, y).sum(), [a, col])

    @given(_DIMS, _DIMS, st.sampled_from([-1, 0]), _SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_softmax_gradients(self, n, m, axis, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, m))
        weights = rng.normal(size=(n, m))  # non-uniform so the Jacobian matters
        gradcheck(lambda t: (t.softmax(axis=axis) * Tensor(weights)).sum(), [x])

    @given(_DIMS, _DIMS, _SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_log_softmax_gradients(self, n, m, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, m))
        weights = rng.normal(size=(n, m))
        gradcheck(lambda t: (t.log_softmax(axis=-1) * Tensor(weights)).sum(), [x])

    @given(_DIMS, st.integers(min_value=2, max_value=4), _SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_layer_norm_gradients(self, n, dim, seed):
        """LayerNorm gradients w.r.t. input, gamma and beta."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, dim))
        gamma = rng.uniform(0.5, 1.5, size=(dim,))
        beta = rng.normal(size=(dim,))
        weights = rng.normal(size=(n, dim))
        gradcheck(
            lambda t, g, b: (layer_norm(t, g, b) * Tensor(weights)).sum(),
            [x, gamma, beta],
            atol=1e-4,
            rtol=1e-3,
        )


# ----------------------------------------------------------------------
# Random netlist structures
# ----------------------------------------------------------------------
CELLS_2IN = ("AND2_X1", "OR2_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1")


@st.composite
def random_netlists(draw):
    """A random small combinational netlist built level by level (always acyclic)."""
    num_inputs = draw(st.integers(2, 4))
    num_gates = draw(st.integers(1, 12))
    netlist = Netlist("random_design", clock=None)
    nets = []
    for i in range(num_inputs):
        net = f"in{i}"
        netlist.add_primary_input(net)
        nets.append(net)
    for g in range(num_gates):
        cell = draw(st.sampled_from(CELLS_2IN))
        a = draw(st.sampled_from(nets))
        b = draw(st.sampled_from(nets))
        out = f"n{g}"
        netlist.add_gate(f"g{g}", cell, [a, b], out)
        nets.append(out)
    netlist.add_primary_output(nets[-1])
    return netlist


class TestNetlistProperties:
    @given(random_netlists())
    @settings(max_examples=40, deadline=None)
    def test_random_netlists_validate_and_order_topologically(self, netlist):
        netlist.validate()
        order = {g.name: i for i, g in enumerate(netlist.topological_order())}
        for gate in netlist.gates.values():
            for fanin in netlist.fanin_gates(gate):
                assert order[fanin.name] < order[gate.name]

    @given(random_netlists())
    @settings(max_examples=30, deadline=None)
    def test_verilog_round_trip_is_lossless(self, netlist):
        parsed = read_verilog(write_verilog(netlist), from_string=True)
        assert parsed.num_gates == netlist.num_gates
        for name, gate in netlist.gates.items():
            assert parsed.gates[name].cell_name == gate.cell_name
            assert parsed.gates[name].inputs == gate.inputs

    @given(random_netlists())
    @settings(max_examples=30, deadline=None)
    def test_graph_view_is_normalised_and_symmetric(self, netlist):
        view = build_graph_view(netlist)
        assert view.num_nodes == netlist.num_gates
        assert np.allclose(view.adjacency, view.adjacency.T)
        eigenvalues = np.linalg.eigvalsh(view.adjacency)
        assert eigenvalues.max() <= 1.0 + 1e-9
