"""Tests for the NetTAG model: multi-grained embeddings and ablation behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NetTAG, NetTAGConfig
from repro.netlist import extract_register_cones, netlist_to_tag


@pytest.fixture(scope="module")
def comb_tag(comb_netlist):
    return netlist_to_tag(comb_netlist)


class TestNodeTexts:
    def test_full_config_uses_tag_texts(self, small_model, comb_tag):
        texts = small_model.node_texts(comb_tag)
        assert texts == comb_tag.node_texts
        assert any("[Expr]" in text for text in texts)

    def test_wo_tag_ablation_uses_empty_texts(self, fast_config, comb_tag, rng):
        model = NetTAG(fast_config.ablated("tag"), rng=rng)
        texts = model.node_texts(comb_tag)
        assert set(texts) == {""}


class TestTagNodeFeatures:
    def test_feature_matrix_width_matches_config(self, small_model, comb_tag):
        features = small_model.tag_node_features(comb_tag)
        assert features.shape == (comb_tag.num_nodes, small_model.tagformer.config.input_dim)

    def test_wo_tag_ablation_zeroes_semantic_channel(self, fast_config, comb_tag, rng):
        model = NetTAG(fast_config.ablated("tag"), rng=rng)
        features = model.tag_node_features(comb_tag)
        text_dim = model.expr_llm.output_dim
        semantic_dim = comb_tag.expression_feature_matrix().shape[1]
        semantic = features[:, text_dim : text_dim + semantic_dim]
        assert np.allclose(semantic, 0.0)
        # The text channel is constant across nodes (empty text for everyone).
        text = features[:, :text_dim]
        assert np.allclose(text, text[0])

    def test_physical_ablation_zeroes_physical_channel(self, comb_tag, rng):
        model = NetTAG(NetTAGConfig.fast(use_physical_attributes=False), rng=rng)
        features = model.tag_node_features(comb_tag)
        physical_dim = comb_tag.physical_matrix().shape[1]
        assert np.allclose(features[:, -physical_dim:], 0.0)


class TestEncoding:
    def test_encode_tag_shapes(self, small_model, comb_tag):
        nodes, graph = small_model.encode_tag(comb_tag)
        assert nodes.shape == (comb_tag.num_nodes, small_model.output_dim)
        assert graph.shape == (small_model.output_dim,)

    def test_multigrained_shapes_match_declared_dims(self, small_model, comb_tag):
        gates, graph = small_model.encode_tag_multigrained(comb_tag)
        assert gates.shape == (comb_tag.num_nodes, small_model.gate_embedding_dim)
        assert graph.shape == (small_model.graph_embedding_dim,)

    def test_multigrained_includes_propagated_channels(self, small_model, comb_tag):
        """Gate embeddings carry raw + 1-hop + 2-hop propagated input features."""
        input_dim = small_model.tagformer.config.input_dim
        assert small_model.gate_embedding_dim == small_model.output_dim + 3 * input_dim
        gates, _ = small_model.encode_tag_multigrained(comb_tag)
        features = small_model.tag_node_features(comb_tag)
        adjacency = comb_tag.graph.adjacency
        offset = small_model.output_dim
        assert np.allclose(gates[:, offset : offset + input_dim], features)
        assert np.allclose(
            gates[:, offset + input_dim : offset + 2 * input_dim], adjacency @ features
        )

    def test_plain_mode_degrades_to_fused_output(self, comb_tag, rng):
        model = NetTAG(NetTAGConfig.fast(multi_grained_embeddings=False), rng=rng)
        gates, graph = model.encode_tag_multigrained(comb_tag)
        assert gates.shape[1] == model.output_dim
        assert graph.shape == (model.output_dim,)

    def test_empty_tag_produces_zero_embeddings(self, small_model, library):
        from repro.netlist import Netlist

        empty = Netlist("void", library=library)
        tag = netlist_to_tag(empty)
        gates, graph = small_model.encode_tag_multigrained(tag)
        assert gates.shape == (0, small_model.gate_embedding_dim)
        assert graph.shape == (small_model.graph_embedding_dim,)
        assert np.allclose(graph, 0.0)

    def test_encoding_is_deterministic(self, small_model, comb_tag):
        first = small_model.encode_tag_multigrained(comb_tag)
        second = small_model.encode_tag_multigrained(comb_tag)
        assert np.allclose(first[0], second[0])
        assert np.allclose(first[1], second[1])


class TestCircuitEmbedding:
    def test_combinational_circuit_embedding(self, small_model, comb_netlist):
        embedding = small_model.embed_circuit(comb_netlist)
        assert embedding.gate_embeddings.shape[0] == comb_netlist.num_gates
        assert embedding.dim == small_model.graph_embedding_dim
        assert embedding.cone_embeddings == {}
        assert embedding.physical_summary.shape[0] > 0

    def test_sequential_circuit_embeds_register_cones(self, small_model, seq_netlist):
        embedding = small_model.embed_circuit(seq_netlist)
        registers = {g.name for g in seq_netlist.registers}
        assert set(embedding.cone_embeddings) == registers
        # The circuit embedding of a sequential design is the sum of cone embeddings.
        total = sum(embedding.cone_embeddings.values())
        assert np.allclose(embedding.graph_embedding, total)

    def test_gate_embedding_lookup(self, small_model, comb_netlist):
        embedding = small_model.embed_circuit(comb_netlist)
        name = embedding.gate_names[3]
        assert np.allclose(embedding.gate_embedding(name), embedding.gate_embeddings[3])

    def test_embed_gates_order_matches_tag(self, small_model, comb_netlist):
        embeddings, names = small_model.embed_gates(comb_netlist)
        assert embeddings.shape[0] == len(names) == comb_netlist.num_gates
        assert names == sorted(comb_netlist.gates)

    def test_embed_cones(self, small_model, seq_netlist):
        cones = extract_register_cones(seq_netlist)
        result = small_model.embed_cones(cones)
        assert set(result) == {cone.register_name for cone in cones}
        expected_dim = small_model.graph_embedding_dim + small_model.gate_embedding_dim
        for vector in result.values():
            assert vector.shape == (expected_dim,)

    def test_circuit_feature_vector(self, small_model, comb_netlist):
        vector = small_model.circuit_feature_vector(comb_netlist)
        assert vector.shape[0] == small_model.graph_embedding_dim + 8
        assert np.all(np.isfinite(vector))

    def test_clear_caches(self, small_model, comb_netlist):
        small_model.embed_circuit(comb_netlist)
        small_model.clear_caches()
        assert len(small_model.expr_llm._cache) == 0
