"""Cross-modal retrieval: RTL ⇄ netlist ⇄ layout over one embedding index.

NetTAG's pre-training aligns netlist cone embeddings with the RTL text that
produced them and the layout graph they place into.  This example serves
that alignment end to end:

1. preprocess a small corpus of controller designs, keeping the aligned
   artefacts (register cones + per-register RTL cone text + cone layouts),
2. build a **multimodal index**: circuit/cone rows in the netlist space,
   plus ``rtl`` and ``layout`` rows projected into the same space by
   per-modality projection heads fitted on the aligned corpus,
3. query in every direction through the service — "which netlist cones
   implement this RTL snippet", "which RTL matches this layout region",
   "which layouts match this cone" — with modality-aware request batching,
4. reload the self-contained index directory (weights + projection heads
   travel in a ``multimodal/`` sidecar) the way a fresh process would.

Run with:  PYTHONPATH=src python examples/crossmodal_retrieval.py
(The CLI equivalent: ``python -m repro index build --synthetic 1 ...`` then
``python -m repro index query snippet.rtl --from rtl --to cone ...``; see
docs/serving.md for the full cookbook.)
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import NetTAGConfig, NetTAGPipeline
from repro.rtl import make_controller, render_register_cone
from repro.serve import CONE_KIND, LAYOUT_KIND, RTL_KIND, CrossModalEncoder


def show(title: str, hits) -> None:
    print(f"\n{title}")
    for hit in hits:
        print(f"  {hit.score:+.4f}  [{hit.kind}] {hit.key}")


def main() -> None:
    # ------------------------------------------------------------------
    # 1. An aligned corpus: every register cone keeps its RTL text + layout.
    # ------------------------------------------------------------------
    pipeline = NetTAGPipeline(NetTAGConfig.fast())
    modules = [
        make_controller(f"ctrl_{i}", seed=40 + i, num_states=3 + i, data_width=3 + i)
        for i in range(4)
    ]
    pipeline.designs = [pipeline.preprocess_module(m, suite="demo") for m in modules]
    items = pipeline.multimodal_items()
    print(f"corpus: {len(pipeline.designs)} designs, {len(items)} aligned register cones")

    # ------------------------------------------------------------------
    # 2. Build the multimodal index (one encode pass per modality; the
    #    projection heads are fitted on the aligned pairs and persisted
    #    next to the shards).
    # ------------------------------------------------------------------
    index_dir = Path(tempfile.mkdtemp(prefix="nettag-crossmodal-")) / "index"
    index, encoder = pipeline.build_multimodal_index(index_dir)
    print("index kinds:", index.stats()["kinds"])
    print("projection heads:", {
        m: encoder.projection(m).num_anchors for m in (RTL_KIND, LAYOUT_KIND)
    }, "anchors")

    # ------------------------------------------------------------------
    # 3. Query in every direction.  The query RTL comes from an *unseen*
    #    controller, so this is retrieval, not a lookup.
    # ------------------------------------------------------------------
    probe = make_controller("probe", seed=99, num_states=4, data_width=4)
    probe_rtl = render_register_cone(probe, probe.registers[0].name)
    with pipeline.serve(index=index_dir) as service:
        show(
            "netlist cones implementing the probe's FSM register RTL:",
            service.query_rtl(probe_rtl, to_kind=CONE_KIND, k=3),
        )
        sample = items[0]
        show(
            f"RTL matching the layout of {sample.key}:",
            service.query_layout(sample.layout, to_kind=RTL_KIND, k=3),
        )
        show(
            f"layout regions matching the cone {sample.key}:",
            service.query_modal(sample.cone, CONE_KIND, to_kind=LAYOUT_KIND, k=3),
        )

    # ------------------------------------------------------------------
    # 4. The index directory is self-contained: a fresh process reloads the
    #    sidecar (encoders + projection heads, fingerprint-checked) and
    #    keeps answering cross-modal queries.
    # ------------------------------------------------------------------
    reloaded = CrossModalEncoder.load(index_dir, pipeline.model)
    vector = reloaded.encode_queries(RTL_KIND, [probe_rtl])[0]
    print("\nreloaded sidecar projects the probe RTL to a",
          f"{vector.shape[0]}-dim index vector — ready to serve")


if __name__ == "__main__":
    main()
