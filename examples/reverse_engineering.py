"""Reverse-engineering scenario: gate functions and register roles.

The paper motivates NetTAG with netlist reverse engineering and hardware
security: given a flattened post-synthesis netlist, recover

* which functional block each combinational gate implements (Task 1 —
  adder / subtractor / multiplier / comparator / control / ...), and
* which registers hold FSM state versus datapath data (Task 2).

This example pre-trains a small NetTAG, builds the two evaluation datasets
from the synthetic benchmark substrate, and compares NetTAG's frozen
embeddings (plus a lightweight MLP head) against the task-specific supervised
baselines from the paper: GNN-RE for gate functions and ReIGNN for register
roles.

Run with ``python examples/reverse_engineering.py`` (a few minutes on CPU;
set ``REPRO_EXAMPLES_FAST=1`` for a scaled-down smoke-test profile, as the
CI example-smoke job does).
"""

import os

from repro.core import NetTAGConfig, NetTAGPipeline
from repro.tasks import (
    build_sequential_dataset,
    build_task1_dataset,
    run_task1,
    run_task2,
)

FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")


def print_rows(title: str, results: dict, columns) -> None:
    print(f"\n{title}")
    methods = list(results)
    header = ["design"] + [f"{m} {c}" for m in methods for c in columns]
    print("  " + " | ".join(f"{h:>16}" for h in header))
    num_rows = len(next(iter(results.values())))
    for i in range(num_rows):
        cells = [results[methods[0]][i].as_dict()["design"]]
        for method in methods:
            row = results[method][i].as_dict()
            cells.extend(str(row[c]) for c in columns)
        print("  " + " | ".join(f"{c:>16}" for c in cells))


def main() -> None:
    print("pre-training NetTAG (fast preset) ...")
    pipeline = NetTAGPipeline(NetTAGConfig.fast())
    pipeline.pretrain(designs_per_suite=1)

    # ------------------------------------------------------------------
    # Task 1: combinational gate function identification (vs. GNN-RE).
    # ------------------------------------------------------------------
    print("\nbuilding the GNN-RE-style gate-function dataset ...")
    task1 = build_task1_dataset(num_designs=3 if FAST else 5)
    results1 = run_task1(pipeline.model, task1, baseline_epochs=5 if FAST else 20)
    print_rows(
        "Task 1 — gate function identification (percent, last row = average)",
        results1,
        columns=("accuracy", "f1"),
    )

    # ------------------------------------------------------------------
    # Task 2: state vs. data register identification (vs. ReIGNN).
    # ------------------------------------------------------------------
    print("\nbuilding the sequential register dataset ...")
    names = ("itc1", "chipyard1", "vex1") if FAST else (
        "itc1", "itc2", "chipyard1", "vex1", "opencores1", "opencores2"
    )
    sequential = build_sequential_dataset(design_names=names)
    results2 = run_task2(pipeline.model, sequential, baseline_epochs=5 if FAST else 20)
    print_rows(
        "Task 2 — state/data register identification (percent, last row = average)",
        results2,
        columns=("sensitivity", "accuracy"),
    )

    nettag_avg = results1["NetTAG"][-1].as_dict()
    gnnre_avg = results1["GNN-RE"][-1].as_dict()
    print("\nsummary: NetTAG accuracy", nettag_avg["accuracy"], "% vs GNN-RE", gnnre_avg["accuracy"], "%")


if __name__ == "__main__":
    main()
