"""Interrupt-and-resume pre-training with stage-cached pipeline artefacts.

This example runs the NetTAG pre-training pipeline three ways and shows that
the resumable training engine keeps them all exactly equivalent:

1. an **uninterrupted** reference run,
2. a run **interrupted mid Step-1** (simulated with a step budget) that is
   then **resumed** from its periodic checkpoint — the combined loss curves
   and final weights are bit-identical to the reference,
3. a **warm-cache** rerun that skips every preprocessing stage (watch the
   stage timers flip to "cache hit").

Run with:  PYTHONPATH=src python examples/resume_pretraining.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.core import NetTAGConfig, NetTAGPipeline


def report(title: str, summary) -> None:
    print(f"\n--- {title} ---")
    for line in summary.stage_report():
        print(f"  {line}")
    if summary.expr_result is not None:
        status = "complete" if summary.expr_result.completed else (
            f"interrupted at step {summary.expr_result.steps}"
        )
        print(f"  step-1: {len(summary.expr_result.losses)} recorded steps ({status})")
    if summary.tag_result is not None and summary.tag_result.total_losses:
        print(f"  step-2: final loss {summary.tag_result.final_loss:.4f}")


def main() -> None:
    work = Path(tempfile.mkdtemp(prefix="nettag-resume-"))
    cache_dir = work / "cache"
    config = NetTAGConfig.fast()

    # 1. The uninterrupted reference run (no caching, no checkpoints).
    reference = NetTAGPipeline(config)
    reference_summary = reference.pretrain(designs_per_suite=1)
    report("reference (uninterrupted)", reference_summary)

    # 2. Interrupt Step-1 after 3 optimiser steps (snapshots every 2 steps),
    #    as if the process had been killed mid-training...
    interrupted = NetTAGPipeline(config, cache_dir=cache_dir)
    partial = interrupted.pretrain(
        designs_per_suite=1,
        checkpoint_every=2,
        max_steps={"expr_pretrain": 3},
    )
    report("interrupted mid step-1", partial)

    #    ... then resume from the checkpoint directory.  Preprocessing comes
    #    from the artifact cache; training continues from the exact snapshot.
    resumed = NetTAGPipeline(config, cache_dir=cache_dir)
    resumed_summary = resumed.pretrain(designs_per_suite=1, checkpoint_every=2, resume=True)
    report("resumed", resumed_summary)

    same_losses = (
        resumed_summary.expr_result.losses == reference_summary.expr_result.losses
        and resumed_summary.tag_result.total_losses == reference_summary.tag_result.total_losses
    )
    same_weights = all(
        np.array_equal(a.data, b.data)
        for (_, a), (_, b) in zip(
            sorted(reference.model.named_parameters()),
            sorted(resumed.model.named_parameters()),
        )
    )
    print(f"\nresumed run matches reference: losses={same_losses} weights={same_weights}")
    assert same_losses and same_weights

    # 3. A fresh run against the warm cache: preprocessing is skipped.
    warm = NetTAGPipeline(config, cache_dir=cache_dir, checkpoint_dir=work / "fresh-ckpt")
    warm_summary = warm.pretrain(designs_per_suite=1)
    report("warm cache rerun", warm_summary)
    hits = warm_summary.cache_stats.get("hits", 0)
    print(f"\nwarm rerun artifact-cache hits: {hits}")

    shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    main()
