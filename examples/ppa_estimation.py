"""Early PPA estimation scenario: slack, power and area from the netlist stage.

Physical-design feedback normally requires running placement, routing,
parasitic extraction and sign-off STA — the expensive late-stage flow.  The
paper's Tasks 3 and 4 show that NetTAG embeddings of the *post-synthesis*
netlist can predict those late-stage metrics early:

* Task 3 — per-register endpoint slack after physical optimisation,
* Task 4 — whole-circuit post-layout power and area, both with and without
  the physical-optimisation pass, compared against the synthesis-tool
  estimate (the "EDA tool" row of Table V) and a PowPrediCT-style GNN.

This example builds the datasets with the bundled physical-design and
analysis substrates (placement, SPEF-like parasitics, STA, power/area
analysis), so every label is produced by an actual — if simplified — flow.

Run with ``python examples/ppa_estimation.py`` (a few minutes on CPU; set
``REPRO_EXAMPLES_FAST=1`` for a scaled-down smoke-test profile, as the CI
example-smoke job does).
"""

import os

from repro.core import NetTAGConfig, NetTAGPipeline
from repro.tasks import (
    average_mape,
    build_sequential_dataset,
    build_task4_dataset,
    run_task3,
    run_task4,
    rows_by_method,
)


def main() -> None:
    print("pre-training NetTAG (fast preset) ...")
    pipeline = NetTAGPipeline(NetTAGConfig.fast())
    pipeline.pretrain(designs_per_suite=1)

    # ------------------------------------------------------------------
    # Task 3: endpoint register slack prediction at the netlist stage.
    # ------------------------------------------------------------------
    print("\nbuilding sequential designs with sign-off slack labels ...")
    fast = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")
    names = ("itc1", "chipyard1", "vex1") if fast else (
        "itc1", "itc2", "chipyard1", "vex1", "opencores1", "opencores2"
    )
    sequential = build_sequential_dataset(design_names=names)
    results3 = run_task3(pipeline.model, sequential, baseline_epochs=5 if fast else 20)
    print("\nTask 3 — endpoint register slack (R / MAPE%, last row = average)")
    for method, rows in results3.items():
        for row in rows:
            d = row.as_dict()
            print(f"  {method:>10} {d['design']:>12}  R={d['r']:<5} MAPE={d['mape']}%")

    # ------------------------------------------------------------------
    # Task 4: circuit-level power/area prediction.
    # ------------------------------------------------------------------
    print("\nbuilding the circuit-level power/area dataset ...")
    task4 = build_task4_dataset(num_designs=6 if fast else 12)
    rows4 = run_task4(pipeline.model, task4, baseline_epochs=8 if fast else 25)

    print("\nTask 4 — post-layout power/area prediction (R / MAPE%)")
    print(f"  {'metric':>8} {'scenario':>9} {'method':>10} {'R':>6} {'MAPE%':>6}")
    for row in rows4:
        d = row.as_dict()
        print(f"  {d['metric']:>8} {d['scenario']:>9} {d['method']:>10} {d['r']:>6} {d['mape']:>6}")

    by_method = rows_by_method(rows4)
    print("\naverage MAPE across metrics/scenarios:")
    for method in by_method:
        print(f"  {method:>10}: {round(average_mape(rows4, method), 1)}%")


if __name__ == "__main__":
    main()
