"""Bring your own netlist: structural Verilog in, TAG and embeddings out.

A downstream user typically has a post-synthesis structural Verilog netlist
rather than this repository's RTL generators.  This example shows that path:

1. write a small structural Verilog netlist by hand (NanGate45-style cells),
2. parse it with :func:`repro.netlist.read_verilog`,
3. convert it to a text-attributed graph and inspect the gate text attributes
   (name, cell type, 2-hop symbolic expression, physical characteristics),
4. run the physical-design and analysis substrates on it (placement,
   parasitics, STA, power, area),
5. embed it with a pre-trained NetTAG,
6. index the embeddings and retrieve the nearest register cones through the
   serving layer (``repro.serve``).

Run with ``python examples/custom_netlist.py``.
"""

import tempfile
from pathlib import Path

from repro.analysis import analyze_area, analyze_power, analyze_timing
from repro.core import NetTAGConfig, NetTAGPipeline
from repro.netlist import extract_register_cones, netlist_to_tag, read_verilog, write_verilog
from repro.physical import extract_parasitics, place

# A tiny sequential design: a 2-bit accumulator with an overflow comparator.
CUSTOM_VERILOG = """
module my_accumulator (clk, in0, in1, out0, out1, overflow);
  input clk;
  input in0;
  input in1;
  output out0;
  output out1;
  output overflow;
  wire s0, s1, c0, c1, n0, n1;
  XOR2_X1 u_add0 (.A(in0), .B(out0), .Z(s0));
  AND2_X1 u_carry0 (.A(in0), .B(out0), .Z(c0));
  XOR2_X1 u_add1a (.A(in1), .B(out1), .Z(n0));
  XOR2_X1 u_add1b (.A(n0), .B(c0), .Z(s1));
  AND2_X1 u_carry1a (.A(in1), .B(out1), .Z(n1));
  AND2_X1 u_carry1b (.A(n0), .B(c0), .Z(c1));
  OR2_X1 u_carry_out (.A(n1), .B(c1), .Z(overflow));
  DFF_X1 r_acc0 (.D(s0), .CK(clk), .Q(out0));
  DFF_X1 r_acc1 (.D(s1), .CK(clk), .Q(out1));
endmodule
"""


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Parse the structural Verilog.
    # ------------------------------------------------------------------
    netlist = read_verilog(CUSTOM_VERILOG, from_string=True)
    print("parsed", netlist.name, "with", netlist.num_gates, "gates")
    print("  cell counts:", netlist.cell_type_counts())
    print("  registers:", [gate.name for gate in netlist.registers])

    # ------------------------------------------------------------------
    # 2. Text-attributed graph: inspect a gate's text attribute.
    # ------------------------------------------------------------------
    tag = netlist_to_tag(netlist, k=2)
    print("\nTAG has", tag.num_nodes, "nodes and", tag.graph.num_edges, "edges")
    sample = next(node for node in tag.nodes if node.name == "u_add1b")
    print("text attribute of gate u_add1b:")
    print(" ", sample.text)

    # ------------------------------------------------------------------
    # 3. Register cones (the chunking used for sequential circuits).
    # ------------------------------------------------------------------
    cones = extract_register_cones(netlist)
    for cone in cones:
        print(f"\nregister cone for {cone.register_name}: {cone.num_gates} gates")

    # ------------------------------------------------------------------
    # 4. Physical design + analysis substrates.
    # ------------------------------------------------------------------
    placement = place(netlist)
    spef = extract_parasitics(netlist, placement)
    timing = analyze_timing(netlist, spef=spef)
    power = analyze_power(netlist, spef=spef)
    area = analyze_area(netlist, placement)
    print("\nanalysis reports:")
    print("  worst slack:", round(timing.worst_negative_slack, 4), "ns")
    print("  total power:", round(power.total, 4), "uW-equivalent units")
    print("  total area:", round(area.total, 4), "um^2-equivalent units")

    # ------------------------------------------------------------------
    # 5. Embed with a pre-trained NetTAG.
    # ------------------------------------------------------------------
    print("\npre-training a small NetTAG to embed the custom netlist ...")
    pipeline = NetTAGPipeline(NetTAGConfig.fast())
    pipeline.pretrain(designs_per_suite=1)
    embedding = pipeline.embed_circuit(netlist)
    print("  circuit embedding dim:", embedding.dim)
    print("  per-gate embeddings:", embedding.gate_embeddings.shape)
    print("  register-cone embeddings:", sorted(embedding.cone_embeddings))

    # ------------------------------------------------------------------
    # 6. Index the corpus (pre-training designs + the custom netlist) and
    #    retrieve the nearest register cones for one of ours.
    # ------------------------------------------------------------------
    index_dir = Path(tempfile.mkdtemp(prefix="nettag-custom-")) / "index"
    pipeline.build_index(index_dir)
    with pipeline.serve(index=index_dir) as service:
        service.add_netlists([netlist])
        hits = service.query_cone(cones[0], k=3, exclude_self=True,
                                  netlist_name=netlist.name)
        print(f"\nnearest indexed cones to {netlist.name}::{cones[0].register_name}:")
        for hit in hits:
            print(f"  {hit.score:+.4f}  {hit.key}")

    # Round-trip check: the netlist can be written back out as Verilog.
    round_trip = read_verilog(write_verilog(netlist), from_string=True)
    assert round_trip.num_gates == netlist.num_gates
    print("\nVerilog round-trip OK")


if __name__ == "__main__":
    main()
