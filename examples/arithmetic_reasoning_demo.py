"""Fig. 8 demo: reasoning about a netlist's arithmetic function.

The paper's final demo (Fig. 8) shows that an LLM asked to interpret a
flattened post-synthesis netlist struggles — the gate-level Verilog carries no
functional context — but once NetTAG annotates each gate with its predicted
functional block (adder / multiplier / comparator / control), the same prompt
becomes easy: "this module compares two values, performs addition and
multiplication, and selects the result based on the comparison".

Without an external LLM available, this example reproduces the pipeline up to
the prompt and a rule-based summary:

1. pre-train NetTAG and fine-tune a gate-function head on a few designs,
2. take an unseen arithmetic design, anonymise its gate names, and show the
   raw netlist text an LLM would have to reason about,
3. predict the functional block of every gate with NetTAG,
4. print the annotated netlist text and a functional summary derived from the
   predicted block inventory — the content of the right-hand side of Fig. 8.

Run with ``python examples/arithmetic_reasoning_demo.py``.
"""

from collections import Counter

import numpy as np

from repro.core import NetTAGConfig, NetTAGPipeline, fit_classifier
from repro.netlist import write_verilog
from repro.tasks import TASK1_CLASSES, build_task1_dataset

# Pragmatic phrasing of what each predicted block contributes to the module.
BLOCK_DESCRIPTIONS = {
    "adder": "performs addition",
    "subtractor": "performs subtraction",
    "multiplier": "performs multiplication",
    "comparator": "compares two operand values",
    "control": "selects between intermediate results (multiplexing / control)",
    "logic": "applies bitwise logic to the operands",
    "parity": "computes a parity check",
    "shifter": "shifts an operand",
}


def summarise(block_counts: Counter) -> str:
    """Turn a predicted block inventory into a one-sentence functional summary."""
    present = [name for name, count in block_counts.most_common() if count > 0]
    clauses = [BLOCK_DESCRIPTIONS[name] for name in present if name in BLOCK_DESCRIPTIONS]
    if not clauses:
        return "The module's function could not be determined."
    return "This module " + ", ".join(clauses[:-1]) + (" and " if len(clauses) > 1 else "") + clauses[-1] + "."


def main() -> None:
    print("pre-training NetTAG (fast preset) ...")
    pipeline = NetTAGPipeline(NetTAGConfig.fast())
    pipeline.pretrain(designs_per_suite=1)
    model = pipeline.model

    # Fine-tune a gate-function head on a handful of training designs and hold
    # out the last design as the "unknown netlist" of the demo.
    dataset = build_task1_dataset(num_designs=5)
    train_designs, demo_design = dataset.designs[:-1], dataset.designs[-1]

    train_features, train_labels = [], []
    for design in train_designs:
        embeddings, names = model.embed_gates(design.netlist)
        index = {name: i for i, name in enumerate(names)}
        for gate, label in design.gate_labels.items():
            train_features.append(embeddings[index[gate]])
            train_labels.append(label)
    head = fit_classifier(np.stack(train_features), train_labels, head="mlp")

    # ------------------------------------------------------------------
    # The netlist text an LLM would see *without* NetTAG.
    # ------------------------------------------------------------------
    verilog = write_verilog(demo_design.netlist)
    print("\n--- flattened netlist text (first 12 lines) -------------------")
    for line in verilog.splitlines()[:12]:
        print(" ", line)
    print("  ...")
    print("\nWithout gate-function labels the instance names (g0, g1, ...) and")
    print("cell types carry no hint of the module's arithmetic behaviour.")

    # ------------------------------------------------------------------
    # NetTAG gate-function reasoning.
    # ------------------------------------------------------------------
    embeddings, names = model.embed_gates(demo_design.netlist)
    predictions = head.predict(embeddings)
    predicted_blocks = {name: TASK1_CLASSES[int(p)] for name, p in zip(names, predictions)}

    print("\n--- netlist text annotated with NetTAG gate functions ---------")
    shown = 0
    for name in names:
        gate = demo_design.netlist.gates[name]
        print(f"  {gate.cell_name:<10} {name:<6} // NetTAG: {predicted_blocks[name]}")
        shown += 1
        if shown >= 12:
            print("  ...")
            break

    block_counts = Counter(predicted_blocks.values())
    print("\npredicted block inventory:", dict(block_counts))
    print("\nfunctional summary (Fig. 8 right-hand side):")
    print(" ", summarise(block_counts))

    # Ground truth for reference.
    true_counts = Counter(TASK1_CLASSES[label] for label in demo_design.gate_labels.values())
    print("\nground-truth block inventory:", dict(true_counts))
    print("ground-truth summary:")
    print(" ", summarise(true_counts))


if __name__ == "__main__":
    main()
