"""Quickstart: pre-train a small NetTAG and use its embeddings.

This walks through the full NetTAG workflow on a CPU-sized configuration:

1. pre-train the foundation model on the built-in synthetic circuit corpus
   (Step 1 expression contrastive learning, Step 2 TAGFormer fusion with
   cross-stage alignment),
2. synthesise new circuits with the built-in logic-synthesis substrate,
3. generate multi-grained embeddings (gates, register cones, whole circuit),
4. fine-tune a lightweight classifier head on frozen gate embeddings,
5. persist the corpus in an embedding index and retrieve similar circuits
   through the serving layer (``repro.serve``).

Run with ``python examples/quickstart.py`` (takes well under a minute).
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    NetTAGConfig,
    NetTAGPipeline,
    evaluate_classification,
    train_test_split,
)
from repro.rtl import make_controller, make_gnnre_design
from repro.synth import synthesize
from repro.tasks import TASK1_CLASSES, TASK1_CLASS_INDEX, anonymize_gate_names


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Pre-train NetTAG (fast preset: small ExprLLM, one TAGFormer layer).
    # ------------------------------------------------------------------
    config = NetTAGConfig.fast()
    pipeline = NetTAGPipeline(config)
    summary = pipeline.pretrain(designs_per_suite=1)
    print("pre-training finished in", round(summary.total_seconds, 1), "s")
    print("  designs:", summary.num_designs, "| register cones:", summary.num_cones,
          "| expressions:", summary.num_expressions)

    # ------------------------------------------------------------------
    # 2. Embed a combinational circuit.
    # ------------------------------------------------------------------
    module = make_gnnre_design(1, seed=3)
    netlist = synthesize(module).netlist
    embedding = pipeline.embed_circuit(netlist)
    print("\ncombinational design:", netlist.name)
    print("  gates:", netlist.num_gates)
    print("  gate embedding matrix:", embedding.gate_embeddings.shape)
    print("  circuit embedding dim:", embedding.dim)

    # ------------------------------------------------------------------
    # 3. Embed a sequential circuit: it is chunked into register cones.
    # ------------------------------------------------------------------
    controller = synthesize(make_controller("itc99_b01", seed=5)).netlist
    seq_embedding = pipeline.embed_circuit(controller)
    print("\nsequential design:", controller.name)
    print("  registers:", len(controller.registers))
    print("  register-cone embeddings:", len(seq_embedding.cone_embeddings))

    # ------------------------------------------------------------------
    # 4. Fine-tune a lightweight head on frozen gate embeddings
    #    (miniature version of Task 1: gate function identification).
    # ------------------------------------------------------------------
    anonymized, _ = anonymize_gate_names(netlist)
    gate_embeddings, gate_names = pipeline.embed_gates(anonymized)
    labels = []
    keep = []
    for row, name in enumerate(gate_names):
        block = anonymized.gates[name].attributes.get("block")
        if isinstance(block, str) and block in TASK1_CLASS_INDEX:
            labels.append(TASK1_CLASS_INDEX[block])
            keep.append(row)
    features = gate_embeddings[np.asarray(keep)]
    labels = np.asarray(labels)

    split = train_test_split(len(labels), train_fraction=0.6, seed=0, stratify=labels)
    report, _ = evaluate_classification(features, labels, split, head="mlp")
    print("\ngate-function fine-tuning on", len(labels), "labelled gates")
    print("  classes present:", sorted({TASK1_CLASSES[l] for l in labels}))
    print("  test accuracy:", round(report["accuracy"] * 100.0, 1), "%")
    print("  test F1:", round(report["f1"] * 100.0, 1), "%")

    # ------------------------------------------------------------------
    # 5. Persist the corpus in an embedding index and retrieve from it.
    #    (The full serving cookbook, cross-modal queries included, lives in
    #    docs/serving.md and examples/crossmodal_retrieval.py.)
    # ------------------------------------------------------------------
    index_dir = Path(tempfile.mkdtemp(prefix="nettag-quickstart-")) / "index"
    index = pipeline.build_index(index_dir)      # cached pipeline stage
    with pipeline.serve(index=index_dir) as service:
        hits = service.query_netlist(controller, k=3)
        print(f"\nindexed {len(index)} embeddings; top-3 circuits for "
              f"{controller.name}:")
        for hit in hits:
            print(f"  {hit.score:+.4f}  {hit.key}")


if __name__ == "__main__":
    main()
