"""Benchmark regenerating Table V (Task 4: circuit power/area prediction)."""

from conftest import emit

from repro.bench import run_table5

import pytest

# Paper-table benchmarks pre-train a full pipeline; excluded from the default
# test selection (see pytest.ini).  Run with: pytest -m bench benchmarks
pytestmark = pytest.mark.bench


def _mape(table, target, scenario, method):
    for row in table.rows:
        if row["Target"] == target and row["Scenario"] == scenario and row["Method"] == method:
            return row["MAPE (%)"]
    raise AssertionError(f"missing row: {target} {scenario} {method}")


def test_table5_power_area_prediction(benchmark, bench_context):
    table = benchmark.pedantic(
        lambda: run_table5(bench_context), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    for target in ("area", "power"):
        for scenario in ("w/o opt", "w/ opt"):
            nettag = _mape(table, target, scenario, "NetTAG")
            gnn = _mape(table, target, scenario, "GNN")
            eda = _mape(table, target, scenario, "EDA Tool")
            # Paper shape: NetTAG has the lowest error in every scenario.
            assert nettag <= gnn + 1.0
            assert nettag <= eda + 1.0
    # Paper shape: the EDA estimate degrades sharply once physical optimisation
    # is considered for power (34 -> 38% in the paper; large here as well).
    assert _mape(table, "power", "w/ opt", "EDA Tool") > _mape(table, "power", "w/ opt", "NetTAG")
