"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper.  They share one
pre-trained NetTAG pipeline (building it is the dominant cost), exposed through
the session-scoped ``bench_context`` fixture.  Select the profile with the
``REPRO_BENCH_PROFILE`` environment variable (``fast`` by default, ``paper``
for the larger configuration).
"""

from __future__ import annotations

import pytest

from repro.bench import BenchContext, get_context


@pytest.fixture(scope="session")
def bench_context() -> BenchContext:
    return get_context()


def emit(table) -> None:
    """Print a regenerated table so it appears in the benchmark output."""
    print()
    print(table.to_text())
