"""Throughput + parity benchmark for the batched TAG encoding engine.

Unlike the paper-table benchmarks (marked ``bench``), this file runs in the
default test selection: it is fast (no pre-training; an untrained model is
encode-speed-representative because inference cost does not depend on the
weights) and it guards the engine's two contract points:

* batched and sequential embeddings agree to 1e-8 on mixed-size cone batches,
* the batched engine is ≥ 3x faster per gate than the seed's sequential path
  on a ≥ 16-cone workload.

The measured report is written to ``BENCH_throughput.json`` at the repo root
(also refreshable via ``scripts/bench_throughput.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.throughput import (
    api_sequential_encode,
    build_cone_workload,
    run_throughput,
    save_report,
    seed_sequential_encode,
)
from repro.core import NetTAG, NetTAGConfig
from repro.netlist import netlist_to_tag
from repro.nn import get_backend

# 1e-8 under the float64 reference backend; float32 backends hold the same
# algebra to float32 rounding.
PARITY_ATOL = 1e-8 if get_backend().compute_dtype == np.float64 else 1e-5

MIN_CONES = 16
REQUIRED_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def model() -> NetTAG:
    return NetTAG(NetTAGConfig.fast(), rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def cones():
    workload = build_cone_workload()
    assert len(workload) >= MIN_CONES
    return workload


@pytest.fixture(scope="module")
def tags(model, cones):
    return [netlist_to_tag(cone.netlist, k=model.config.expression_hops) for cone in cones]


class TestBatchedThroughput:
    def test_batched_matches_both_sequential_paths(self, model, cones, tags):
        """Same inputs -> same embeddings, for the seed path and the API path."""
        model.clear_caches()
        batched = model.encode_batch(cones, tags=tags)
        model.clear_caches()
        seed_reference = seed_sequential_encode(model, cones, tags)
        model.clear_caches()
        api_reference = api_sequential_encode(model, cones, tags)
        assert len(batched) == len(cones)
        for got, seed_want, api_want in zip(batched, seed_reference, api_reference):
            np.testing.assert_allclose(got, seed_want, atol=PARITY_ATOL)
            np.testing.assert_allclose(got, api_want, atol=PARITY_ATOL)

    def test_batched_speedup_and_report(self, model, cones, tmp_path):
        """≥ 3x per-gate speedup vs the seed sequential path; report saved."""
        # Best-of-N timing on an otherwise idle interpreter; retry once to
        # shield against a pathological scheduling hiccup mid-measurement.
        report = run_throughput(model=model, cones=cones)
        if report["speedup"]["batched_vs_seed_sequential"] < REQUIRED_SPEEDUP:
            report = run_throughput(model=model, cones=cones, repeats=5)
        # The committed baseline changes only through the deliberate
        # scripts/bench_throughput.py refresh (host-stamped, gated): a test
        # run is often loaded (the suite itself pegs the core) and the fast-
        # backend CI leg would record fast==reference ratios, so a test-time
        # rewrite pollutes the regression floor.  Park the report in tmp.
        path = save_report(report, path=tmp_path / "BENCH_throughput.json")
        speedup = report["speedup"]["batched_vs_seed_sequential"]
        reuse_rate = report["expression_cache"]["reuse_rate"]
        print(
            f"\nbatched TAG encoding: {speedup:.2f}x vs seed sequential "
            f"({report['per_gate_latency_us']['batched']:.1f} us/gate batched, "
            f"expression reuse rate {reuse_rate:.1%}) -> {path.name}"
        )
        assert report["workload"]["num_cones"] >= MIN_CONES
        assert speedup >= REQUIRED_SPEEDUP
        assert 0.0 < reuse_rate <= 1.0
