"""Cross-modal retrieval benchmark guard (runs in the default selection).

Like ``benchmarks/test_index_throughput.py``, this file is intentionally
unmarked (not ``bench``/``slow``): it needs no pre-training — the projection
heads are fitted at index-build time against whatever encoder weights are
loaded — and it guards the cross-modal engine's contract points on a
≥200-item aligned corpus:

* querying any modality retrieves the aligned partner (or an exact
  vector-level duplicate of it) in the top-10 for ≥ 0.8 of items, across
  every modality pair (RTL ⇄ cone, layout ⇄ cone, RTL ⇄ layout),
* concurrent modality-batched serving is ≥ 3x faster per query than a
  stateless sequential per-query encode+search loop,
* the sequential and concurrent serving paths score identically.

The measured report is written to ``BENCH_crossmodal.json`` at the repo root
(also refreshable via ``scripts/bench_crossmodal.py``).
"""

from __future__ import annotations

import pytest

from repro.bench.crossmodal import (
    MODALITY_PAIRS,
    build_crossmodal_pipeline,
    run_crossmodal_bench,
    save_crossmodal_report,
)

MIN_ITEMS = 220
REQUIRED_RECALL = 0.8
REQUIRED_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def pipeline():
    return build_crossmodal_pipeline(min_items=MIN_ITEMS)


class TestCrossModalBench:
    def test_recall_throughput_and_report(self, pipeline, tmp_path):
        # Best-effort timing on a shared machine; retry once if the speedup
        # gate trips to shield against a scheduling hiccup mid-measurement.
        report = run_crossmodal_bench(pipeline=pipeline, min_items=MIN_ITEMS)
        if report["speedup"]["concurrent_vs_sequential"] < REQUIRED_SPEEDUP:
            report = run_crossmodal_bench(pipeline=pipeline, min_items=MIN_ITEMS)
        # The committed baseline changes only through the deliberate
        # scripts/bench_crossmodal.py refresh (host-stamped, gated): a test
        # run is often loaded (the suite itself pegs the core), so a test-
        # time rewrite pollutes the regression floor.  Park the report in tmp.
        path = save_crossmodal_report(report, path=tmp_path / "BENCH_crossmodal.json")
        recall = report["quality"]["aligned_pair_recall_at_10"]
        speedup = report["speedup"]["concurrent_vs_sequential"]
        print(
            f"\ncross-modal: recall@10 {recall:.3f}, {speedup:.2f}x concurrent vs "
            f"sequential ({report['latency']['concurrent_batched_per_query_ms']:.2f} "
            f"ms/query batched) -> {path.name}"
        )
        assert report["corpus"]["num_items"] >= MIN_ITEMS
        # Contract 1: every modality pair was measured and none collapsed.
        assert set(report["quality"]["per_pair"]) == {
            f"{a}->{b}" for a, b in MODALITY_PAIRS
        }
        for pair, numbers in report["quality"]["per_pair"].items():
            assert numbers["recall_at_10"] >= 0.5, pair
        # Contract 2: the aligned pretraining objective is served measurably.
        assert recall >= REQUIRED_RECALL
        # Contract 3: concurrent modality-batched serving throughput.
        assert speedup >= REQUIRED_SPEEDUP
        assert report["quality"]["ranking_parity"]
        # The scheduler really batched (otherwise the speedup is accidental).
        assert report["scheduler"]["mean_batch_size"] > 1.0
