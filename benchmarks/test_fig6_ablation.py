"""Benchmark regenerating Fig. 6 (ablation study)."""

from conftest import emit

from repro.bench import run_fig6

import pytest

# Paper-table benchmarks pre-train a full pipeline; excluded from the default
# test selection (see pytest.ini).  Run with: pytest -m bench benchmarks
pytestmark = pytest.mark.bench


def test_fig6_ablation_study(benchmark, bench_context):
    table = benchmark.pedantic(
        lambda: run_fig6(bench_context), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    rows = {row["Variant"]: row for row in table.rows}
    full = rows["NetTAG (full)"]
    without_tag = rows["w/o TAG"]
    # Paper shape: removing the TAG text attributes hurts the functional tasks the most.
    assert full["Task1 Acc"] >= without_tag["Task1 Acc"] - 1.0
    assert full["Task2 Acc"] >= without_tag["Task2 Acc"] - 2.0
    # The full model should not be the worst variant on any task.
    for column in ("Task1 Acc", "Task2 Acc"):
        assert full[column] >= min(row[column] for row in rows.values()) - 1e-9
    for column in ("Task3 MAPE", "Task4 MAPE"):
        assert full[column] <= max(row[column] for row in rows.values()) + 1e-9
