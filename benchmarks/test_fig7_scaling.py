"""Benchmark regenerating Fig. 7 (scaling with model and data size)."""

from conftest import emit

from repro.bench import run_fig7_data_scaling, run_fig7_model_scaling

import pytest

# Paper-table benchmarks pre-train a full pipeline; excluded from the default
# test selection (see pytest.ini).  Run with: pytest -m bench benchmarks
pytestmark = pytest.mark.bench


def test_fig7_model_size_scaling(benchmark, bench_context):
    table = benchmark.pedantic(
        lambda: run_fig7_model_scaling(bench_context), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    rows = {row["Model size"]: row for row in table.rows}
    assert {"small", "medium", "large"} <= set(rows)
    # Paper shape: the largest backbone is not worse than the smallest one on the
    # functional tasks (allowing noise at CPU scale).
    assert rows["large"]["Task1 Acc"] >= rows["small"]["Task1 Acc"] - 5.0
    assert rows["large"]["Task2 Acc"] >= rows["small"]["Task2 Acc"] - 5.0


def test_fig7_data_size_scaling(bench_context, benchmark):
    table = benchmark.pedantic(
        lambda: run_fig7_data_scaling(bench_context), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    rows = {row["Data fraction"]: row for row in table.rows}
    assert {"25%", "50%", "100%"} <= set(rows)
    # Paper shape: the full corpus is not worse than the 25% corpus (allowing noise).
    assert rows["100%"]["Task1 Acc"] >= rows["25%"]["Task1 Acc"] - 5.0
    assert rows["100%"]["Task4 MAPE"] <= rows["25%"]["Task4 MAPE"] + 5.0
