"""Benchmark regenerating Fig. 5 (comparison with pre-trained AIG encoders)."""

from conftest import emit

from repro.bench import run_fig5

import pytest

# Paper-table benchmarks pre-train a full pipeline; excluded from the default
# test selection (see pytest.ini).  Run with: pytest -m bench benchmarks
pytestmark = pytest.mark.bench


def test_fig5_aig_encoder_comparison(benchmark, bench_context):
    table = benchmark.pedantic(
        lambda: run_fig5(bench_context), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    rows = {row["Method"]: row for row in table.rows}
    assert {"FGNN", "DeepGate3", "ExprLLM only", "NetTAG"} <= set(rows)
    structure_best = max(rows["FGNN"]["Accuracy"], rows["DeepGate3"]["Accuracy"])
    # Paper shape: NetTAG is the best method and the text-aware methods sit above
    # the structure-only AIG encoders.
    assert rows["NetTAG"]["Accuracy"] >= structure_best
    assert rows["NetTAG"]["Accuracy"] >= rows["ExprLLM only"]["Accuracy"] - 1.0
