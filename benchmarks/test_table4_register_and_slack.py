"""Benchmark regenerating Table IV (Task 2: register identification, Task 3: slack)."""

from conftest import emit

from repro.bench import run_table4

import pytest

# Paper-table benchmarks pre-train a full pipeline; excluded from the default
# test selection (see pytest.ini).  Run with: pytest -m bench benchmarks
pytestmark = pytest.mark.bench


def test_table4_register_identification_and_slack(benchmark, bench_context):
    table = benchmark.pedantic(
        lambda: run_table4(bench_context), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    averages = next(row for row in table.rows if row["Design"] == "Avg.")
    # Task 2 paper shape: NetTAG well above ReIGNN on sensitivity and balanced accuracy.
    assert averages["NetTAG Sens"] >= averages["ReIGNN Sens"]
    assert averages["NetTAG Acc"] >= averages["ReIGNN Acc"] - 1.0
    # Task 3 paper shape: NetTAG at least matches the timing GNN's correlation and
    # does not trail badly on MAPE (paper: R 0.92 vs 0.90, MAPE 15% vs 17%).
    assert averages["NetTAG R"] >= averages["GNN R"] - 0.02
    assert averages["NetTAG MAPE"] <= averages["GNN MAPE"] + 2.0
