"""Benchmark regenerating Table VI (runtime comparison)."""

from conftest import emit

from repro.bench import run_table6

import pytest

# Paper-table benchmarks pre-train a full pipeline; excluded from the default
# test selection (see pytest.ini).  Run with: pytest -m bench benchmarks
pytestmark = pytest.mark.bench


def test_table6_runtime_comparison(benchmark, bench_context):
    table = benchmark.pedantic(
        lambda: run_table6(bench_context), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    rows = {row["Source"]: row for row in table.rows}
    assert set(rows) == {"ITC99", "OpenCores", "Chipyard", "VexRiscv", "GNNRE"}
    for source, row in rows.items():
        assert row["NetTAG total (s)"] > 0
        if source == "GNNRE":
            continue
        # Paper shape: roughly an order of magnitude speed-up over the EDA flow.
        assert row["Speed-up"] > 2.0, f"{source} speed-up too small: {row['Speed-up']}"
