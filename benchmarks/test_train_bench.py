"""Always-on guard for the data-parallel pretraining benchmark machinery.

Runs in the default (tier-1) selection with a deliberately tiny workload: it
asserts the *correctness* contract — bit-identical loss curves and final
weights across worker counts — and the report/gate plumbing, not the speedup.
Wall-clock ratios are only meaningful on multi-core hardware, so the 2.5x
floor is enforced by ``scripts/bench_train.py`` in the scheduled benchmark
workflow (see ``BENCH_train.json`` and ``.github/workflows/bench.yml``).
"""

from __future__ import annotations

import pytest

from repro.bench.train import (
    build_expression_workload,
    check_regression,
    check_speedup,
    run_parity_check,
    run_train_bench,
)


@pytest.fixture(scope="module")
def tiny_report():
    return run_train_bench(
        workers=(1, 2),
        num_steps=3,
        batch_size=12,
        world_size=2,
        shard_size=32,
        seed=11,
        num_expressions=48,
    )


def test_workload_is_deterministic_and_deduplicated():
    first = build_expression_workload(num_expressions=32, seed=5)
    second = build_expression_workload(num_expressions=32, seed=5)
    assert first == second
    assert len(set(first)) == 32
    assert build_expression_workload(num_expressions=32, seed=6) != first


def test_worker_counts_are_bit_identical(tiny_report):
    run_parity_check(tiny_report)  # raises on divergence
    assert tiny_report["parity"]["bit_identical"]
    assert set(tiny_report["parity"]["per_worker_count"]) == {"1", "2"}
    assert tiny_report["seconds"].keys() == {"1", "2"}
    assert "workers_2_vs_1" in tiny_report["speedup"]


def test_parity_check_fails_on_divergence(tiny_report):
    broken = dict(tiny_report)
    broken["parity"] = {"bit_identical": False, "per_worker_count": {"1": True, "2": False}}
    with pytest.raises(AssertionError, match="parity failure"):
        run_parity_check(broken)


def test_speedup_gate_only_fires_when_active(tiny_report):
    inactive = dict(tiny_report)
    inactive["speedup_gate"] = {"threshold": 2.5, "cores": 1, "active": False}
    assert check_speedup(inactive) == []
    active = dict(tiny_report)
    active["speedup"] = {"workers_4_vs_1": 1.1}
    active["speedup_gate"] = {"threshold": 2.5, "cores": 8, "active": True}
    failures = check_speedup(active)
    assert failures and "below the 2.50x floor" in failures[0]


def test_regression_check_policy(tiny_report):
    baseline = {
        "speedup": {"workers_4_vs_1": 3.0},
        "speedup_gate": {"active": True},
    }
    ok = {"speedup": {"workers_4_vs_1": 2.9}}
    assert check_regression(ok, baseline) == []
    regressed = {"speedup": {"workers_4_vs_1": 1.0}}
    assert any("regressed" in f for f in check_regression(regressed, baseline))
    missing = {"speedup": {}}
    assert any("missing" in f for f in check_regression(missing, baseline))
    weak_baseline = {
        "speedup": {"workers_4_vs_1": 0.9},
        "speedup_gate": {"active": False},
    }
    assert check_regression(regressed, weak_baseline) == []
