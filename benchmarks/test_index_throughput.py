"""Index + serving-layer benchmark (runs in the default test selection).

Like ``benchmarks/test_throughput.py``, this file is intentionally unmarked
(not ``bench``/``slow``): it needs no pre-training — an untrained model is
encode-speed-representative — and it guards the serving subsystem's three
contract points on a 500-cone corpus:

* index round-trip is exact (save → load → query returns the identical
  ranking with bit-equal scores),
* IVF approximate search reaches recall@10 ≥ 0.9 against exact search,
* concurrent micro-batched serving is ≥ 3x faster per query than a
  stateless sequential per-query encode+search loop.

The measured report is written to ``BENCH_index.json`` at the repo root
(also refreshable via ``scripts/bench_index.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.index_throughput import (
    build_index_corpus,
    build_scale_corpus,
    run_index_bench,
    save_index_report,
)
from repro.core import NetTAG, NetTAGConfig

MIN_CONES = 500
REQUIRED_RECALL = 0.9
REQUIRED_SPEEDUP = 3.0


@pytest.fixture(scope="module", autouse=True)
def _reference_backend():
    """The contract points are exact-equality statements (bit-equal scores,
    ranking parity across serving paths) stated against the float64 reference
    backend; float32 compute breaks near-ties legitimately."""
    from repro.nn import use_backend

    with use_backend("reference"):
        yield


@pytest.fixture(scope="module")
def model() -> NetTAG:
    return NetTAG(NetTAGConfig.fast(), rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def corpus():
    cones = build_index_corpus(num_cones=MIN_CONES)
    assert len(cones) == MIN_CONES
    return cones


class TestIndexServingBench:
    def test_quality_throughput_and_report(self, model, corpus, tmp_path):
        # Best-effort timing on a shared machine; retry once if the speedup
        # gate trips to shield against a scheduling hiccup mid-measurement.
        report = run_index_bench(model=model, cones=corpus)
        if report["speedup"]["concurrent_vs_sequential"] < REQUIRED_SPEEDUP:
            report = run_index_bench(model=model, cones=corpus)
        # The committed baseline changes only through the deliberate
        # scripts/bench_index.py refresh (host-stamped, gated): a test run
        # is often loaded (the suite itself pegs the core), so a test-time
        # rewrite pollutes the regression floor.  Park the report in tmp.
        path = save_index_report(report, path=tmp_path / "BENCH_index.json")
        speedup = report["speedup"]["concurrent_vs_sequential"]
        recall = report["quality"]["ivf_recall_at_10"]
        print(
            f"\nindex serving: {speedup:.2f}x concurrent vs sequential "
            f"({report['latency']['concurrent_batched_per_query_ms']:.2f} ms/query batched), "
            f"IVF recall@10 {recall:.3f} -> {path.name}"
        )
        assert report["corpus"]["num_cones"] >= MIN_CONES
        # Contract 1: persistence is exact and all serving paths agree.
        assert report["quality"]["round_trip_exact"]
        assert report["quality"]["ranking_parity"]
        # Contract 2: approximate search quality.
        assert recall >= REQUIRED_RECALL
        # Contract 3: concurrent batched serving throughput.
        assert speedup >= REQUIRED_SPEEDUP
        # The scheduler really batched (otherwise the speedup is accidental).
        assert report["scheduler"]["mean_batch_size"] > 1.0


class TestHNSWGuard:
    """Small always-on guard for the corpus-scale HNSW path.

    Recall-only on a deliberately small clustered corpus — no wall-clock
    gates here (single-core CI makes latency assertions flaky); the full
    100k-vector recall/latency/QPS gates live in the scheduled
    ``scripts/bench_index.py --scale`` run.
    """

    def test_hnsw_beats_recall_floor_and_ivf_on_clustered_corpus(self, tmp_path):
        from repro.serve import (
            EmbeddingIndex,
            HNSWSearcher,
            IVFSearcher,
            exact_topk,
            recall_at_k,
        )

        corpus = build_scale_corpus(3000, 32, clusters=256, seed=5, noise=0.9)
        queries = build_scale_corpus(40, 32, clusters=256, seed=6, noise=0.9)
        index = EmbeddingIndex.create(tmp_path / "guard", dim=32, shard_size=1024)
        index.add([f"v{i}" for i in range(len(corpus))], corpus)
        exact = exact_topk(index, queries, k=10)

        hnsw = HNSWSearcher(M=12, ef_construction=64, ef_search=48, seed=0).fit(index)
        hnsw_recall = recall_at_k(exact, hnsw.search(queries, k=10), k=10)
        ivf = IVFSearcher(num_centroids=48, nprobe=4, seed=0).fit(index)
        ivf_recall = recall_at_k(exact, ivf.search(queries, k=10), k=10)

        assert hnsw_recall >= 0.95, f"HNSW recall@10 {hnsw_recall} below floor"
        assert hnsw_recall >= ivf_recall - 0.02, (
            f"HNSW recall {hnsw_recall} should match/beat IVF nprobe=4 {ivf_recall}"
        )
