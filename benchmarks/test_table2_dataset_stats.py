"""Benchmark regenerating Table II (dataset statistics)."""

from conftest import emit

from repro.bench import run_table2

import pytest

# Paper-table benchmarks pre-train a full pipeline; excluded from the default
# test selection (see pytest.ini).  Run with: pytest -m bench benchmarks
pytestmark = pytest.mark.bench


def test_table2_dataset_statistics(benchmark, bench_context):
    table = benchmark.pedantic(
        lambda: run_table2(bench_context), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    rows = {row["Source"]: row for row in table.rows}
    assert set(rows) == {"ITC99", "OpenCores", "Chipyard", "VexRiscv", "Total"}
    total = rows["Total"]
    assert total["# Expressions"] > 0
    assert total["# Cones"] > 0
    # Paper shape: OpenCores has by far the smallest cones / expressions of the
    # four suites, Chipyard the largest expressions.
    assert rows["OpenCores"]["Avg. nodes"] <= rows["Chipyard"]["Avg. nodes"]
    assert rows["OpenCores"]["Avg. tokens"] <= rows["Chipyard"]["Avg. tokens"]
