"""Benchmark regenerating Table III (Task 1: gate function identification)."""

from conftest import emit

from repro.bench import run_table3

import pytest

# Paper-table benchmarks pre-train a full pipeline; excluded from the default
# test selection (see pytest.ini).  Run with: pytest -m bench benchmarks
pytestmark = pytest.mark.bench


def test_table3_gate_function_identification(benchmark, bench_context):
    table = benchmark.pedantic(
        lambda: run_table3(bench_context), rounds=1, iterations=1, warmup_rounds=0
    )
    emit(table)

    averages = next(row for row in table.rows if row["Design"] == "Avg.")
    # Paper shape: NetTAG above the task-specific GNN-RE baseline on the
    # aggregate metrics (paper: 97% vs 83% accuracy).
    assert averages["NetTAG Acc"] >= averages["GNN-RE Acc"]
    assert averages["NetTAG F1"] >= averages["GNN-RE F1"]
    assert averages["NetTAG Acc"] > 50.0
